(** Bounded, sharded memoization table for the interleaving explorer,
    plus an optional persistent cross-scenario cache.

    {2 Bounded two-generation table}

    Each shard keeps a {e hot} and a {e cold} hashtable. Inserts go to
    hot; when hot reaches the shard's capacity the generations rotate
    (cold is discarded and counted as evictions, hot becomes cold, a
    fresh hot starts). Lookups hit hot first, then cold, promoting cold
    hits back into hot — entries referenced at least once per
    generation are never evicted, entries untouched for two full
    generations are. Eviction can only cost re-expansion (the explorer
    treats a miss as "not yet explored"), never correctness, so the
    table bounds peak memory at roughly [2 * capacity] summaries while
    leaving results bit-identical to an unbounded memo.

    Shard selection hashes the {e full} key with FNV-1a — unlike
    [Hashtbl.hash], whose meaningful-nodes limit can truncate what it
    reads of large structured keys, every byte of the encoding
    participates, so long keys sharing a prefix still spread across
    shards. Equality remains on the whole key: shard choice can affect
    only balance, never answers.

    With [locked:true] each shard carries a mutex (for multi-domain
    use); with [locked:false] the mutexes are never taken. *)

type 'a t

val create : shards:int -> cap:int -> locked:bool -> 'a t
(** [cap] is the {e total} hot-generation capacity, split evenly across
    [shards] (at least one entry per shard). [shards] must be a power
    of two. *)

val find : 'a t -> string -> 'a option
val add : 'a t -> string -> 'a -> unit

val try_add : 'a t -> string -> 'a -> bool
(** Non-blocking {!add}: take the shard lock only if it is free.
    Returns [false] — without inserting — when another domain holds the
    lock, so a writer can defer the entry to a private generation and
    {!merge_batch} it later instead of stalling. Always succeeds on an
    [locked:false] table. *)

val find_with_shard : 'a t -> string -> 'a option * int
(** [find] plus the shard index the key hashed to, so a caller can pair
    the answer with {!shard_owner} (the explorer uses this to steer
    steals toward the domain feeding the shards it reads). *)

val merge_batch : 'a t -> domain:int -> (string, 'a) Hashtbl.t -> int
(** Merge a whole private generation into the table, grouping entries
    by shard so each shard's lock is taken at most once per call (vs.
    once per entry with {!add}). The first domain to populate a shard
    becomes its pinned owner (see {!shard_owner}). Returns the number
    of entries merged. The source table is not modified. *)

val shard_owner : 'a t -> int -> int
(** Domain pinned to the shard by the first {!merge_batch} that
    populated it, or [-1] while the shard is unowned. Plain {!add}
    never claims ownership. *)

val evictions : 'a t -> int
(** Entries discarded by generation rotation so far. *)

val locked : 'a t -> bool
(** Whether the table was created with per-shard mutexes. A caller
    holding an unlocked table has no concurrency to defend against and
    can write through directly instead of buffering locally. *)

val length : 'a t -> int
(** Distinct keys currently resident: a key alive in both generations
    (promoted from cold back into hot) counts once. Racy under
    concurrency. *)

val iter : 'a t -> (string -> 'a -> unit) -> unit
(** Iterate resident entries, hot before cold; a key present in both
    generations is visited only once (the hot copy). Not
    concurrency-safe: call only after all workers have joined. *)

val shard_of_string : shards:int -> string -> int
(** The shard index [create] would use — exposed so tests can assert
    balance. [shards] must be a power of two. *)

val fnv1a64 : string -> int64
(** FNV-1a over the whole string (the hash behind
    [shard_of_string]). *)

(** {2 Persistent cross-scenario cache}

    A [Marshal]-ed file mapping (scenario, net backend) -> (root
    fingerprint, state key -> safe-subtree summary). Only {e safe}
    summaries (no violations) are ever persisted, so a warm hit can
    skip a subtree without being able to suppress a violation. Three
    guards decide whether a load is usable, and any failure silently
    yields an empty cache (the file is rebuilt on save):
    - a schema version stamped into the file ([schema]);
    - the section key: scenario name {e and} net-backend identity
      (e.g. [Uldma_net.Backend.cache_key], which folds in the tick).
      The net backend must be part of the key because the root
      fingerprint alone cannot distinguish backends — no transfer is
      in flight at the root, so a timed run would otherwise warm-start
      from a Null summary whose subtree counts are simply wrong;
    - the root kernel's fingerprint (encodings are root-relative, so a
      rebuilt-differently root invalidates its section's entries). *)
module Persist : sig
  type entry = { p_paths : int; p_stuck : int }

  val schema : int
  (** 3: entries keyed by 16-byte Fp128 fingerprint keys. Earlier
      schemas (full-encoding string keys) are rejected wholesale —
      their keys can never match a fingerprint lookup. *)

  val load :
    file:string -> scenario:string -> net:string -> root:int64 -> (string, entry) Hashtbl.t option
  (** [None] when the file is missing, unreadable, of another schema,
      or holds no matching (scenario, net, root) section. The returned
      table must be treated as read-only (concurrent lookups are safe
      only without writers). *)

  val save :
    file:string -> scenario:string -> net:string -> root:int64 -> (string * entry) list -> unit
  (** Merge [entries] into the file's section for [(scenario, net)]
      (replacing it wholesale if the stored root fingerprint differs)
      and rewrite the file atomically (temp file + rename). Other
      sections are preserved — the on-disk body is re-read under an
      exclusive lock ([file ^ ".lock"] sidecar for cross-process
      savers, a process-wide mutex for same-process domains) so
      concurrent saves serialise instead of clobbering each other's
      freshly written sections. Write errors are silently ignored: the
      cache is an accelerator, never a dependency. *)
end
