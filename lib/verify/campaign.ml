(* Two-level batch driver over many candidate explorations sharing one
   memo; see the mli for the contract. *)

open Uldma_os

type 'v candidate = {
  c_label : string;
  c_root : Kernel.t;
  c_key_tag : (Kernel.t -> string) option;
}

type stats = {
  g_candidates : int;
  g_outer : int;
  g_inner : int;
  g_paths : int;
  g_states : int;
  g_hits : int;
  g_memo_length : int;
  g_memo_evictions : int;
}

(* Outer-first split: when candidates are plentiful every domain runs
   whole candidates sequentially (inner = 1) — candidate trees in a
   campaign are small, and intra-tree stealing on a small tree is pure
   overhead (publications, shard traffic, forks nobody needed). Only
   when the candidate count cannot feed every domain do the leftover
   domains turn into intra-tree workers. *)
let split_jobs ~jobs ~candidates =
  let jobs = max 1 jobs in
  let outer = max 1 (min jobs candidates) in
  (outer, max 1 (jobs / outer))

(* A candidate exploration should only fall back to intra-tree
   stealing when it actually has spare domains; and with plentiful
   candidates the adaptive cutoff starts high so even those runs keep
   small subtrees inline. *)
let default_cutoff_for ~outer ~candidates = if candidates >= 2 * outer then 64 else 8

let run ~candidates ~pids ~baseline ?(jobs = 1) ?(max_instructions_per_leg = 2000)
    ?(max_paths = 1_000_000) ?(dedup = true) ?(paranoid_memo = false)
    ?(memo_cap = 1 lsl 20) ?shared ?cutoff ?merge_batch ~check () =
  let n = Array.length candidates in
  let outer, inner = split_jobs ~jobs ~candidates:n in
  let sm =
    match shared with
    | Some sm -> sm
    | None -> Explorer.create_shared ~cap:memo_cap ~locked:(outer > 1 || inner > 1) ()
  in
  (* fresh key generation for this cell: keys minted against an earlier
     baseline/backend under the same table can never alias ours *)
  Explorer.bump_generation sm;
  let cutoff =
    match cutoff with Some c -> c | None -> default_cutoff_for ~outer ~candidates:n
  in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let explore_one i =
    let c = candidates.(i) in
    let r =
      Explorer.explore ~root:c.c_root ~pids ~baseline ~max_instructions_per_leg ~max_paths
        ~dedup ~paranoid_memo ~jobs:inner ~shared:sm ?key_tag:c.c_key_tag ~cutoff
        ?merge_batch ~check ()
    in
    results.(i) <- Some r
  in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        explore_one i;
        loop ()
      end
    in
    loop ()
  in
  if outer = 1 then worker ()
  else begin
    let domains = List.init outer (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains
  end;
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Campaign.run: a candidate was never explored")
      results
  in
  let total f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  let stats =
    {
      g_candidates = n;
      g_outer = outer;
      g_inner = inner;
      g_paths = total (fun r -> r.Explorer.paths);
      g_states = total (fun r -> r.Explorer.states_visited);
      g_hits = total (fun r -> r.Explorer.dedup_hits);
      g_memo_length = Explorer.shared_length sm;
      g_memo_evictions = Explorer.shared_evictions sm;
    }
  in
  (results, stats)
