(** Campaign engine: run many near-identical candidate explorations
    through one cross-exploration shared memo, with two-level
    parallelism (DESIGN.md §5h).

    A {e campaign cell} is one (baseline kernel, oracle) pair and an
    array of candidates — kernels snapshotted from the baseline that
    differ only in one process's program (the synthesized accomplice,
    typically; see {!Uldma_workload.Synth}). All candidates share one
    {!Explorer.shared_memo}: candidate N warm-starts from the
    in-memory union of candidates 1..N-1, which is where the campaign
    speedup comes from — the post-exit and common-residual subtrees of
    near-identical programs collapse onto the same decorated keys.

    {2 Parallelism policy}

    [jobs] domains are split {e outer-first}:
    [outer = min jobs #candidates] domains each pull whole candidates
    off a shared queue, and each candidate runs with
    [inner = jobs / outer] intra-tree workers. With plentiful
    candidates this degenerates to [inner = 1]: every candidate
    explores on the fast sequential path (no deques, no steals) and
    all parallelism is embarrassing outer-level fan-out. The adaptive
    cutoff is also started high in that regime so nothing splits
    intra-tree. Only when candidates are scarcer than domains does
    intra-tree stealing switch back on.

    {2 Determinism}

    Per-candidate [paths], [violations] (list, order) and [truncated]
    are independent of memo warmth, job counts and scheduling — the
    explorer's dedup/settlement invariants — so a campaign's result
    array is byte-identical at every [jobs] value, and identical to
    running every candidate cold and sequentially. Warmth shows up
    only in cost fields ([states_visited], [dedup_hits], timings).

    {2 Safety requirements}

    - Candidate roots MUST be snapshotted from the baseline
      {e sequentially, before [run]} (typically by the enumerator):
      [Kernel.snapshot] clears the source's page-ownership flags, so
      concurrent snapshots of one baseline race.
    - The baseline must not be mutated while [run] executes (worker
      domains read its pages as the shared encoding baseline).
    - [check] must be pure (it runs on worker domains).
    - Each candidate's [c_key_tag] must determine the residual
      behaviour of the process whose program varies (see
      {!Explorer.explore}'s [key_tag] doc). *)

open Uldma_os

type 'v candidate = {
  c_label : string;  (** stable identifier, e.g. the program's mnemonic string *)
  c_root : Kernel.t;  (** private snapshot of the cell baseline, program installed *)
  c_key_tag : (Kernel.t -> string) option;
      (** fixed-width residual tag; [None] only if all candidates share
          one program text *)
}

type stats = {
  g_candidates : int;
  g_outer : int;  (** outer (candidate-level) domains used *)
  g_inner : int;  (** intra-tree workers per candidate *)
  g_paths : int;  (** sum of per-candidate [paths] *)
  g_states : int;  (** sum of per-candidate [states_visited] *)
  g_hits : int;  (** sum of per-candidate [dedup_hits] *)
  g_memo_length : int;  (** summaries resident in the shared table after the run *)
  g_memo_evictions : int;  (** cumulative evictions of the shared table *)
}

val split_jobs : jobs:int -> candidates:int -> int * int
(** [(outer, inner)] as described above; exposed for tests and the
    bench. *)

val run :
  candidates:'v candidate array ->
  pids:int list ->
  baseline:Kernel.t ->
  ?jobs:int ->
  ?max_instructions_per_leg:int ->
  ?max_paths:int ->
  ?dedup:bool ->
  ?paranoid_memo:bool ->
  ?memo_cap:int ->
  ?shared:'v Explorer.shared_memo ->
  ?cutoff:int ->
  ?merge_batch:int ->
  check:(Kernel.t -> 'v option) ->
  unit ->
  'v Explorer.result array * stats
(** Explore every candidate; [results.(i)] belongs to
    [candidates.(i)]. A fresh shared memo ([memo_cap] summaries,
    default [2^20]) is created unless [shared] is passed — pass one to
    chain cells of a grid through a single table; the generation is
    bumped on entry either way, so a reused table never aliases a
    previous cell's keys. [cutoff] defaults to the
    plentiful-candidates policy above; [merge_batch] as in
    {!Explorer.explore}. *)
