open Uldma_bus
open Uldma_os

type 'v result = {
  paths : int;
  violations : ('v * int list) list;
  truncated : bool;
  states_visited : int;
  dedup_hits : int;
  stuck_legs : int;
  evictions : int;
  steals : int;
  publications : int;
  lease_splits : int;
  memo_merges : int;
  cutoff : int;
  snapshots : int;
  bytes_hashed : int;
  counters : Uldma_obs.Counters.t;
}

(* Engine-visible transactions issued by [pid] so far, from the bus's
   O(1) per-pid counter. Kernel accesses (context-switch hooks, pid -1)
   and other processes' drained stores live in other slots and so never
   count as the leg's NI access. Only deltas within one leg matter, so
   the counter's absolute value (which spans the snapshot lineage) is
   irrelevant. *)
let ni_accesses kernel pid = Bus.pid_access_count (Kernel.bus kernel) pid

let advance_one_leg kernel pid ~max_instructions =
  let start = ni_accesses kernel pid in
  let rec loop n =
    if n >= max_instructions then `Stuck
    else
      match Kernel.step_pid kernel pid with
      | `Not_runnable -> `Exited
      | `Ok -> if ni_accesses kernel pid > start then `Progress else loop (n + 1)
  in
  loop 0

(* The pseudo-pid of the "let the wire drain" leg: instead of running a
   process to its next NI access, the machine idles forward to the next
   in-flight transfer completion. Only offered when a timed backend has
   a transfer in flight (Kernel.next_transfer_deadline = Some), so the
   Null backend's schedule trees — and goldens — are untouched. Chosen
   outside any real pid range (real pids start at 0; -1 is the kernel). *)
let wait_leg = -2

(* One scheduling leg: a real pid runs to its next NI access, the wait
   leg idles to the next completion. Every call site (sequential DFS,
   the expansion loop, and the work-stealing publish path) must go
   through here so stolen wait legs behave identically. *)
let advance_leg kernel leg ~max_instructions =
  if leg = wait_leg then
    if Kernel.advance_to_next_completion kernel then `Progress else `Stuck
  else advance_one_leg kernel leg ~max_instructions

(* ------------------------------------------------------------------ *)
(* State-deduplicated, optionally multi-domain search.

   The memo table maps a state's key ([Kernel.state_key] over the
   canonical encoding walk — the engine-visible state; the live-pid
   set, which is the only schedule-relevant remainder, is part of it)
   to the *summary* of its fully-explored subtree. The default key is
   a streaming 16-byte/126-bit fingerprint (no encoding string is ever
   built; page content enters via cached digests), under which a false
   merge requires both 63-bit lanes to collide — ~2^-126, checked
   differentially by tools/diff_explore against [paranoid_memo] runs,
   whose keys are the full encoding strings and can never falsely
   merge. A summary stores violation
   schedules as suffixes relative to its state, each tagged with the
   index of its terminal within the subtree's DFS enumeration; a memo
   hit re-emits them under the current prefix, in their original
   discovery order — so dedup on/off (and any job count) produce the
   identical [paths] count, the identical violation list, and even the
   identical order. Summaries are only stored for subtrees explored
   without hitting the lease ("clean"), and a memo hit is only taken
   when its whole path count still fits the lease; otherwise the state
   is re-expanded so truncated runs count exactly like the plain DFS.

   The memo is *bounded* (Memo: two generations per shard, rotate on
   full): an evicted summary only means its state re-expands on the
   next encounter, so peak memory is capped without changing any
   answer. An optional persistent cache (?memo_file) seeds lookups
   with safe summaries from earlier runs of the same scenario build.

   Truncation works through *leases* and a *settlement* pass instead
   of a shared atomic path counter. Every task carries a lease — an
   upper bound on how many terminals the sequential DFS would still
   have had in budget when it reached the task's root — and counts
   terminals against it privately. What a task finds goes into a
   per-task log whose items sit in DFS (lexicographic) order:
   coalesced violation-free stretches, individual violations,
   violation-carrying memo hits, child-task markers (spliced where the
   published subtree sits in the parent's leg order), and a cap marker
   where the lease ran out. After all domains join, a single settlement
   walk replays the root log against the real [max_paths] budget,
   clipping exactly where the sequential DFS would have stopped — so
   paths, the violation list and its order, and [truncated] are
   identical at every [jobs] value even when the run truncates.
   [stuck_legs] is exact whenever nothing is clipped; in a *truncated
   parallel* run it is best-effort (stuck legs aren't individually
   positioned in the log). *)

type 'v summary = {
  s_paths : int;
  (* suffix schedule (forward) + index of the violating terminal within
     the subtree's DFS enumeration, so settlement can clip a partially
     fitting hit exactly where the sequential DFS would have stopped *)
  s_violations : ('v * int list * int) list;
  s_stuck : int;
}

(* Per-task result log, newest item first. Settlement (below) walks it
   oldest-first; the pushing discipline keeps items in DFS order. *)
type 'v item =
  | I_count of int * int (* violation-free terminals, stuck legs *)
  | I_viol of 'v * int list (* violation + full forward schedule *)
  | I_hit of 'v summary * int list (* violating memo hit + forward prefix *)
  | I_child of 'v tlog (* published subtree, in its leg position *)
  | I_capped (* the task's lease ran out here *)

and 'v tlog = { mutable rev_items : 'v item list }

type 'v shared = {
  baseline : Kernel.t; (* encoding baseline: pages still shared with it are skipped *)
  pids : int list;
  max_instructions : int;
  max_paths : int;
  dedup : bool;
  paranoid : bool; (* memo keys are full encoding strings, not fingerprints *)
  check : Kernel.t -> 'v option;
  machine : int;
  visited : int Atomic.t;
  hits : int Atomic.t;
  cutoff : int Atomic.t; (* adaptive publication threshold, see sp_want *)
  depth_max : int Atomic.t; (* deepest node seen so far, feeds the size estimate *)
  memo : 'v summary Memo.t;
  persist : (string, Memo.Persist.entry) Hashtbl.t option;
  key_prefix : string; (* campaign generation tag; "" outside a campaign *)
  key_tag : (Kernel.t -> string) option; (* per-state candidate-residual tag *)
  merge_forced : int; (* merge mid-task when the local generation grows past this *)
  merge_min : int; (* skip trivial merges at task/steal/publish boundaries *)
}

(* A subtree-root task: everything a domain needs to continue the DFS
   from an interior node it took over, plus its lease and the log slot
   the parent spliced into its own log at publication time. *)
type 'v task = {
  t_kernel : Kernel.t;
  t_schedule_rev : int list;
  t_depth : int;
  t_lease : int;
  t_log : 'v tlog;
}

(* Work-stealing hooks threaded through the recursion. [sp_want]
   answers "is anyone hungry and is this node's subtree big enough to
   be worth shipping?"; [sp_publish] pushes a ready subtree root onto
   the worker's own deque, where idle domains steal it from the top.
   Sequential exploration passes [None] and is bit-for-bit the old
   DFS. *)
type 'v split = { sp_want : depth:int -> width:int -> bool; sp_publish : 'v task -> unit }

(* Per-worker plain-int statistics; read by the driver after join. *)
type wstats = {
  mutable st_steals : int;
  mutable st_pubs : int;
  mutable st_splits : int;
  mutable st_merges : int;
  mutable st_snapshots : int; (* Kernel.snapshot calls (elided last legs don't count) *)
  mutable st_hash_bytes : int; (* bytes fed to the memo key (stream + digest fills) *)
}

(* Per-worker context: the private memo generation (jobs > 1 only; the
   sequential path writes straight to the single unlocked shard), the
   preferred steal victim, and the stats slot. *)
type 'v wctx = {
  w_id : int;
  w_local : (string, 'v summary) Hashtbl.t option;
  mutable w_pref : int;
  w_stats : wstats;
}

(* Per-task execution state. [x_used] counts terminals consumed against
   the lease (including memo-hit subtree counts); [x_pp]/[x_ps] batch
   violation-free terminals and stuck legs between log items. *)
type 'v texec = {
  x_lease : int;
  mutable x_used : int;
  mutable x_pp : int;
  mutable x_ps : int;
  mutable x_capped : bool;
  x_log : 'v tlog;
}

let note sh sink kernel depth kind =
  if Uldma_obs.Trace.enabled sink then
    Uldma_obs.Trace.emit sink ~at:(Kernel.now_ps kernel) ~machine:sh.machine ~pid:(-1)
      (match kind with
      | `Fork -> Uldma_obs.Trace.Explorer_fork { depth }
      | `Prune reason -> Uldma_obs.Trace.Explorer_prune { depth; reason }
      | `Dedup -> Uldma_obs.Trace.Explorer_dedup { depth }
      | `Steal -> Uldma_obs.Trace.Explorer_steal { depth }
      | `Violation detail -> Uldma_obs.Trace.Oracle_violation { detail })

let empty_summary = { s_paths = 0; s_violations = []; s_stuck = 0 }

let push_item x item = x.x_log.rev_items <- item :: x.x_log.rev_items

let flush_pending x =
  if x.x_pp <> 0 || x.x_ps <> 0 then begin
    push_item x (I_count (x.x_pp, x.x_ps));
    x.x_pp <- 0;
    x.x_ps <- 0
  end

let cap sh x sink kernel depth =
  if not x.x_capped then begin
    x.x_capped <- true;
    note sh sink kernel depth (`Prune "max_paths");
    flush_pending x;
    push_item x I_capped
  end

let bump_depth_max sh depth =
  let rec go () =
    let d = Atomic.get sh.depth_max in
    if depth > d && not (Atomic.compare_and_set sh.depth_max d depth) then go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Domain-local memo generations. With jobs > 1 every worker writes
   summaries into a private unsynchronised Hashtbl and merges it into
   the shared 64-shard table in batches — at task boundaries and when
   the generation grows past a threshold — so the shard locks are taken
   once per batch instead of once per node. Lookups go local first,
   then shared (one lock), then the read-only persistent cache. A miss
   on a summary another domain holds un-merged merely re-expands that
   subtree; the racy duplicate computes the identical summary. *)

(* Defaults for the batch-merge thresholds; a run can override the
   forced threshold via [?merge_batch] (the boundary minimum scales
   down with it so a tiny batch setting still merges at boundaries). *)
let local_merge_forced = 256
let local_merge_min = 32

let merge_local sh w =
  match w.w_local with
  | Some local when Hashtbl.length local > 0 ->
    ignore (Memo.merge_batch sh.memo ~domain:w.w_id local : int);
    Hashtbl.reset local;
    w.w_stats.st_merges <- w.w_stats.st_merges + 1
  | _ -> ()

let persist_probe sh w e =
  match sh.persist with
  | None -> None
  | Some tbl -> (
    match Hashtbl.find_opt tbl e with
    | Some { Memo.Persist.p_paths; p_stuck } ->
      (* persisted summaries are always violation-free (only safe
         subtrees are saved); promote into the bounded table so
         repeats stay cheap *)
      let s = { s_paths = p_paths; s_violations = []; s_stuck = p_stuck } in
      (match w.w_local with
      | None -> Memo.add sh.memo e s
      | Some local -> Hashtbl.replace local e s);
      Some s
    | None -> None)

let memo_find sh w e =
  match w.w_local with
  | None -> (
    match Memo.find sh.memo e with Some _ as hit -> hit | None -> persist_probe sh w e)
  | Some local -> (
    match Hashtbl.find_opt local e with
    | Some _ as hit -> hit
    | None -> (
      match Memo.find_with_shard sh.memo e with
      | (Some _ as hit), shard ->
        (* hash-near steal preference: remember the domain whose
           generations feed the shards we read from *)
        let owner = Memo.shard_owner sh.memo shard in
        if owner >= 0 && owner <> w.w_id then w.w_pref <- owner;
        hit
      | None, _ -> persist_probe sh w e))

(* Parallel writes are opportunistic write-through: a summary another
   domain cannot see is a subtree it will re-expand, which costs far
   more than a shard lock — but *blocking* on a contended lock at every
   node is the overhead PR 4 paid. So take the shard lock only when it
   is free ([Memo.try_add]); when another domain holds it, the entry
   goes to the private generation instead and reaches the shared table
   in the next boundary [merge_batch]. Under zero contention this is
   immediate visibility with an uncontended lock; under contention the
   write path never stalls and the batch merge amortises the wait. *)
let memo_store sh w e s =
  match w.w_local with
  | None -> Memo.add sh.memo e s
  | Some local ->
    if not (Memo.try_add sh.memo e s) then begin
      Hashtbl.replace local e s;
      if Hashtbl.length local >= sh.merge_forced then merge_local sh w
    end

(* ------------------------------------------------------------------ *)

(* Publish every sibling leg except the first as a fresh subtree-root
   task. The published legs are advanced here (one NI access each) so a
   stolen task is immediately expandable; ownership of each fork
   transfers wholesale to whichever domain pops or steals it. The lease
   handed to each child, [x_lease - x_used], is an upper bound on the
   budget the sequential DFS would still have at the child's root:
   every terminal this task has counted so far lies lexicographically
   before the published subtree. Settlement clips any optimism away. *)
let merge_at_boundary sh w =
  match w.w_local with
  | Some l when Hashtbl.length l >= sh.merge_min -> merge_local sh w
  | _ -> ()

let publish_siblings sh sp w x sink kernel schedule_rev depth rest =
  (* a thief is about to continue next to the subtree we just finished:
     make our summaries visible to it before it starts *)
  merge_at_boundary sh w;
  let children = ref [] in
  List.iter
    (fun pid ->
      let fork = Kernel.snapshot kernel in
      w.w_stats.st_snapshots <- w.w_stats.st_snapshots + 1;
      note sh sink fork depth `Fork;
      match advance_leg fork pid ~max_instructions:sh.max_instructions with
      | `Progress | `Exited ->
        let lease = x.x_lease - x.x_used in
        let lg = { rev_items = [] } in
        w.w_stats.st_pubs <- w.w_stats.st_pubs + 1;
        if lease < sh.max_paths then w.w_stats.st_splits <- w.w_stats.st_splits + 1;
        sp.sp_publish
          {
            t_kernel = fork;
            t_schedule_rev = pid :: schedule_rev;
            t_depth = depth + 1;
            t_lease = lease;
            t_log = lg;
          };
        children := lg :: !children
      | `Stuck ->
        x.x_ps <- x.x_ps + 1;
        note sh sink fork depth (`Prune "stuck leg"))
    rest;
  List.rev !children

(* Explore [kernel]'s subtree; returns its summary and whether it is
   complete ("clean": no lease prune and no re-split inside, safe to
   memoize). Results are pushed onto the task's log in DFS order. With
   [split = Some _], a node whose siblings are published to thieves
   returns unclean — its summary no longer covers the whole subtree —
   but the spliced [I_child] markers keep the global log exact. *)
let rec explore_state sh split w x sink kernel schedule_rev depth =
  if x.x_used >= x.x_lease then begin
    cap sh x sink kernel depth;
    (empty_summary, false)
  end
  else begin
    bump_depth_max sh depth;
    let encoding =
      if sh.dedup then begin
        let key, bytes = Kernel.state_key ~relative_to:sh.baseline ~paranoid:sh.paranoid kernel in
        w.w_stats.st_hash_bytes <- w.w_stats.st_hash_bytes + bytes;
        (* Campaign decoration: a fixed-width generation prefix keeps
           key spaces of different campaign cells (different baselines /
           backends) disjoint inside one shared table, and the
           candidate tag folds in the part of the future the engine
           state cannot see — the accomplice's residual program text
           (programs live in Cpu.ctx, not RAM, so two candidates in the
           same machine state are distinguished only by this tag).
           Both decorations are fixed-length, so prefix ^ tag ^ key is
           unambiguous even under variable-length paranoid keys. *)
        Some
          (match sh.key_tag with
          | None -> if sh.key_prefix = "" then key else sh.key_prefix ^ key
          | Some tag ->
            if sh.paranoid then
              (* exact concatenation: all three parts fixed-width or
                 final, so the decorated string stays injective *)
              if sh.key_prefix = "" then tag kernel ^ key
              else String.concat "" [ sh.key_prefix; tag kernel; key ]
            else begin
              (* fingerprint mode: fold the decorations into a fresh
                 16-byte key instead of concatenating — campaign memo
                 entries then cost the same as undecorated ones (the
                 40-byte concat measurably hurts cache residency on
                 10^5-entry shared tables), at the same 126-bit
                 collision odds the base key already accepts. The
                 paranoid leg keeps exact strings, so the existing
                 paranoid-vs-fingerprint differentials cover this
                 hashing too. *)
              let fp = Uldma_util.Fp128.create () in
              Uldma_util.Fp128.add_string fp sh.key_prefix;
              Uldma_util.Fp128.add_string fp (tag kernel);
              Uldma_util.Fp128.add_string fp key;
              Uldma_util.Fp128.key fp
            end)
      end
      else None
    in
    let hit = match encoding with Some e -> memo_find sh w e | None -> None in
    match hit with
    | Some s when x.x_used + s.s_paths <= x.x_lease ->
      x.x_used <- x.x_used + s.s_paths;
      Atomic.incr sh.hits;
      note sh sink kernel depth `Dedup;
      (if s.s_violations = [] then begin
         (* the common case folds into the pending stretch — no log
            growth for safe subtrees *)
         x.x_pp <- x.x_pp + s.s_paths;
         x.x_ps <- x.x_ps + s.s_stuck
       end
       else begin
         flush_pending x;
         push_item x (I_hit (s, List.rev schedule_rev))
       end);
      (s, true)
    | Some _ | None -> (
      Atomic.incr sh.visited;
      (* the runnable set is computed once per node (it was previously
         recomputed inside a List.mem per candidate pid) *)
      let live = Kernel.runnable_pids kernel in
      let runnable = List.filter (fun pid -> List.mem pid live) sh.pids in
      (* with a transfer in flight, "wait for it" is one more explorable
         leg, ordered after every real pid; a node is terminal only when
         nothing can run *and* nothing is draining *)
      let legs =
        match Kernel.next_transfer_deadline kernel with
        | Some _ -> runnable @ [ wait_leg ]
        | None -> runnable
      in
      match legs with
      | [] ->
        x.x_used <- x.x_used + 1;
        let s =
          match sh.check kernel with
          | Some v ->
            note sh sink kernel depth (`Violation "oracle check failed on a completed schedule");
            flush_pending x;
            push_item x (I_viol (v, List.rev schedule_rev));
            { s_paths = 1; s_violations = [ (v, [], 0) ]; s_stuck = 0 }
          | None ->
            x.x_pp <- x.x_pp + 1;
            { s_paths = 1; s_violations = []; s_stuck = 0 }
        in
        (match encoding with Some e -> memo_store sh w e s | None -> ());
        (s, true)
      | first :: rest ->
        let published, children =
          match split with
          | Some sp when rest <> [] && sp.sp_want ~depth ~width:(List.length legs) ->
            (true, publish_siblings sh sp w x sink kernel schedule_rev depth rest)
          | _ -> (false, [])
        in
        let to_expand = if published then [ first ] else legs in
        let acc_paths = ref 0 and acc_viol = ref [] and acc_stuck = ref 0 in
        let clean = ref (not published) in
        let rec expand = function
          | [] -> ()
          | pid :: tail ->
            (if x.x_used >= x.x_lease then begin
               cap sh x sink kernel depth;
               clean := false
             end
             else begin
               (* Last-leg snapshot elision: after this loop the parent
                  kernel is dead (its memo key was captured above;
                  published siblings forked their own snapshots before
                  the first leg ran), so the final leg advances the
                  parent in place — a node of width w pays w-1 copies,
                  and a chain of width-1 nodes pays none. *)
               let last = tail = [] in
               let fork = if last then kernel else Kernel.snapshot kernel in
               if not last then w.w_stats.st_snapshots <- w.w_stats.st_snapshots + 1;
               note sh sink fork depth `Fork;
               match advance_leg fork pid ~max_instructions:sh.max_instructions with
               | `Progress | `Exited ->
                 let s, c = explore_state sh split w x sink fork (pid :: schedule_rev) (depth + 1) in
                 List.iter
                   (fun (v, sfx, i) -> acc_viol := (v, pid :: sfx, !acc_paths + i) :: !acc_viol)
                   s.s_violations;
                 acc_paths := !acc_paths + s.s_paths;
                 acc_stuck := !acc_stuck + s.s_stuck;
                 if not c then clean := false
               | `Stuck ->
                 (* prune just this leg: the pid spun past the
                    instruction budget without an NI access — its
                    siblings' interleavings are still explored *)
                 x.x_ps <- x.x_ps + 1;
                 incr acc_stuck;
                 note sh sink fork depth (`Prune "stuck leg")
             end);
            expand tail
        in
        expand to_expand;
        if published then begin
          (* splice the published subtrees where they sit in leg order:
             everything found so far (the first leg's subtree) is
             lexicographically before them *)
          flush_pending x;
          List.iter (fun lg -> push_item x (I_child lg)) children
        end;
        let s = { s_paths = !acc_paths; s_violations = List.rev !acc_viol; s_stuck = !acc_stuck } in
        if !clean then (match encoding with Some e -> memo_store sh w e s | None -> ());
        (s, !clean))
  end

(* ------------------------------------------------------------------ *)
(* Settlement. The root log (with every child log spliced at its leg
   position) lists everything the run found in DFS order. Replaying it
   against [max_paths] reproduces the sequential clipped frontier: take
   terminals until the budget runs out, emit exactly the violations
   whose terminal index falls inside it, and flag truncation if
   anything — a stretch, a hit, an unentered child, a cap marker — was
   cut. Runs on the main domain after every worker has joined. *)
let settle ~max_paths root_log =
  let remaining = ref max_paths in
  let truncated = ref false in
  let paths = ref 0 and stuck = ref 0 in
  let out = ref [] in
  let rec walk log =
    List.iter
      (fun item ->
        if !remaining <= 0 then truncated := true
        else
          match item with
          | I_count (p, s) ->
            let take = min p !remaining in
            if take < p then truncated := true;
            paths := !paths + take;
            stuck := !stuck + s;
            remaining := !remaining - take
          | I_viol (v, schedule) ->
            paths := !paths + 1;
            remaining := !remaining - 1;
            out := (v, schedule) :: !out
          | I_hit (s, prefix) ->
            if s.s_paths <= !remaining then begin
              paths := !paths + s.s_paths;
              stuck := !stuck + s.s_stuck;
              remaining := !remaining - s.s_paths;
              List.iter (fun (v, sfx, _) -> out := (v, prefix @ sfx) :: !out) s.s_violations
            end
            else begin
              truncated := true;
              let take = !remaining in
              paths := !paths + take;
              remaining := 0;
              List.iter
                (fun (v, sfx, idx) -> if idx < take then out := (v, prefix @ sfx) :: !out)
                s.s_violations
            end
          | I_child lg -> walk lg
          | I_capped -> truncated := true)
      (List.rev log.rev_items)
  in
  walk root_log;
  (!paths, !stuck, !truncated, List.rev !out)

(* ------------------------------------------------------------------ *)
(* Adaptive publication cutoff. A node is published only when its
   estimated subtree size — (deepest depth seen − depth + 1) ×
   (width − 1), a height-times-branching proxy — clears the cutoff.
   Hungry domains that sweep every deque and find nothing lower it
   (down to 1, which lets any 2-wide node through and bootstraps an
   empty system); a worker that keeps popping its own publications back
   (nobody stole them, so publishing was pure overhead) raises it. The
   final value is reported in the result so the bench can watch the
   equilibrium move. *)

let default_cutoff = 8
let cutoff_min = 1
let cutoff_max = 1 lsl 20

let raise_cutoff sh =
  let c = Atomic.get sh.cutoff in
  if c < cutoff_max then ignore (Atomic.compare_and_set sh.cutoff c (c + 1) : bool)

let lower_cutoff sh =
  let c = Atomic.get sh.cutoff in
  if c > cutoff_min then ignore (Atomic.compare_and_set sh.cutoff c (c - 1) : bool)

(* ------------------------------------------------------------------ *)
(* Work-stealing parallel driver. Every domain owns a private
   Chase–Lev deque (Ws_deque: atomics only, no mutex on the hot path).
   The root task seeds domain 0; from then on load balance is dynamic:
   a worker expanding a node while some domain is hungry publishes the
   node's unexpanded sibling legs onto its own deque (bottom), keeps
   descending into the first leg, and thieves steal from the top — so
   a thief always takes the *largest* (shallowest) subtree the victim
   has published. The sequential cutoff (above) keeps small subtrees
   inline: they never touch the deque, the shard locks, or a fork a
   thief could take.

   Hungry domains hunt starting from their preferred victim (the last
   domain stolen from, nudged by memo shard ownership), briefly
   cpu_relax, then sleep with exponential backoff up to 1ms — so on a
   machine with fewer cores than domains the thieves yield the core to
   whoever has work instead of burning their timeslices spinning.

   Termination: an atomic in-flight counter is incremented *before*
   every publish and decremented after the popped/stolen task's
   subtree completes; a worker finding its deque empty hunts until it
   steals or the counter reaches zero, which cannot happen while any
   task is queued or running.

   Domain-safety is unchanged from PR 3: a task's snapshot lineage is
   owned by exactly one domain at a time (the publisher finishes the
   leg before the push, and the deque's CAS hands the fork to exactly
   one thief); cross-lineage pages are only read. The shared pieces
   are the atomic counters, the sharded bounded memo (batch merges of
   immutable summary values — a racy duplicate expansion computes the
   same summary, costing only time), the per-task logs (each written by
   exactly one domain, read by the settlement walk after join), and
   per-worker trace sinks merged under a lock at the end. *)

let run_parallel sh root_sink root root_log ~jobs stats =
  let deques = Array.init jobs (fun _ -> Uldma_util.Ws_deque.create ()) in
  let in_flight = Atomic.make 0 in
  let hungry = Atomic.make 0 in
  let merge_mutex = Mutex.create () in
  let tracing = Uldma_obs.Trace.enabled root_sink in
  let publish_to dq t =
    Atomic.incr in_flight;
    Uldma_util.Ws_deque.push dq t
  in
  publish_to deques.(0)
    {
      t_kernel = Kernel.snapshot root;
      t_schedule_rev = [];
      t_depth = 0;
      t_lease = sh.max_paths;
      t_log = root_log;
    };
  let worker i () =
    let sink = if tracing then Uldma_obs.Trace.create () else Uldma_obs.Trace.null in
    let own = deques.(i) in
    let w =
      { w_id = i; w_local = Some (Hashtbl.create 512); w_pref = (i + 1) mod jobs; w_stats = stats.(i) }
    in
    let split =
      Some
        {
          (* split while someone is idle, the estimated subtree clears
             the adaptive cutoff, and our own deque has no healthy
             backlog already (publishing more would only shred the
             memo's subtree locality) *)
          sp_want =
            (fun ~depth ~width ->
              Atomic.get hungry > 0
              && Uldma_util.Ws_deque.size own < 16
              && (Atomic.get sh.depth_max - depth + 1) * (width - 1) >= Atomic.get sh.cutoff);
          sp_publish = (fun t -> publish_to own t);
        }
    in
    let own_pops = ref 0 in
    let run_task ~stolen t =
      if tracing then Kernel.attach_trace t.t_kernel sink ~machine:sh.machine;
      if stolen then begin
        w.w_stats.st_steals <- w.w_stats.st_steals + 1;
        (* a stolen task usually borders subtrees we just explored:
           publish our generation before diving into foreign territory *)
        merge_at_boundary sh w;
        note sh sink t.t_kernel t.t_depth `Steal
      end;
      let x =
        { x_lease = t.t_lease; x_used = 0; x_pp = 0; x_ps = 0; x_capped = false; x_log = t.t_log }
      in
      ignore (explore_state sh split w x sink t.t_kernel t.t_schedule_rev t.t_depth : _ summary * bool);
      flush_pending x;
      (* task boundary = merge boundary, unless the generation is trivial *)
      merge_at_boundary sh w;
      Atomic.decr in_flight
    in
    let steal_once () =
      let rec go k =
        if k >= jobs then None
        else
          let j = (w.w_pref + k) mod jobs in
          if j = i then go (k + 1)
          else
            match Uldma_util.Ws_deque.steal deques.(j) with
            | Some _ as t ->
              w.w_pref <- j;
              t
            | None -> go (k + 1)
      in
      go 0
    in
    let rec drain () =
      match Uldma_util.Ws_deque.pop own with
      | Some t ->
        incr own_pops;
        (* our own publications keep coming back to us: nobody is
           stealing, so publishing at this size is pure overhead *)
        if !own_pops land 7 = 0 then raise_cutoff sh;
        run_task ~stolen:false t;
        drain ()
      | None ->
        (* own deque stays empty until we run something (only the owner
           pushes to it), so go hungry and hunt *)
        if Atomic.get in_flight > 0 then begin
          Atomic.incr hungry;
          hunt 0
        end
    and hunt tries =
      match steal_once () with
      | Some t ->
        Atomic.decr hungry;
        own_pops := 0;
        run_task ~stolen:true t;
        drain ()
      | None ->
        if Atomic.get in_flight = 0 then Atomic.decr hungry
        else begin
          if tries land 3 = 3 then lower_cutoff sh;
          if tries < 8 then Domain.cpu_relax ()
          else Unix.sleepf (Float.min 0.001 (0.00001 *. float_of_int (tries - 7)));
          hunt (tries + 1)
        end
    in
    drain ();
    merge_local sh w;
    if tracing then Mutex.protect merge_mutex (fun () -> Uldma_obs.Trace.absorb root_sink sink)
  in
  let domains = List.init jobs (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains

(* ------------------------------------------------------------------ *)

let default_memo_cap = 1 lsl 18

(* ------------------------------------------------------------------ *)
(* Cross-exploration shared memo (campaign mode). One table outlives
   many [explore] calls in one process, so candidate N's exploration
   warm-starts from the union of what candidates 1..N-1 memoized —
   in memory, without a disk round-trip. Soundness needs two
   decorations on every key (see the key-composition comment in
   [explore_state]): a per-cell generation prefix and a per-candidate
   residual tag. The generation is bumped by the campaign driver
   whenever the baseline or backend changes, making stale keys
   unreachable without clearing the table. *)

type 'v shared_memo = { sm_memo : 'v summary Memo.t; mutable sm_generation : int }

let create_shared ?(cap = default_memo_cap) ?(locked = true) () =
  { sm_memo = Memo.create ~shards:64 ~cap ~locked; sm_generation = 0 }

let bump_generation sm = sm.sm_generation <- sm.sm_generation + 1
let shared_generation sm = sm.sm_generation
let shared_length sm = Memo.length sm.sm_memo
let shared_evictions sm = Memo.evictions sm.sm_memo

let generation_prefix gen =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int gen);
  Bytes.unsafe_to_string b

let explore ~root ~pids ?baseline ?(max_instructions_per_leg = 2000) ?(max_paths = 1_000_000)
    ?(dedup = true) ?(paranoid_memo = false) ?(jobs = 1) ?(memo_cap = default_memo_cap) ?memo_file
    ?(memo_key = "default") ?(memo_net = "null") ?shared ?key_tag ?(cutoff = default_cutoff)
    ?(merge_batch = local_merge_forced) ~check () =
  let jobs = max 1 jobs in
  let root_fp = Kernel.fingerprint root in
  (* The persistent cache stores undecorated fingerprint keys (Persist
     schema 3); paranoid string keys live in a different key space, and
     a campaign's decorated keys are only meaningful inside its own
     shared table — so neither loads nor saves the disk cache. *)
  let persist_on = dedup && (not paranoid_memo) && Option.is_none shared in
  let persist_base =
    match memo_file with
    | Some file when persist_on ->
      Memo.Persist.load ~file ~scenario:memo_key ~net:memo_net ~root:root_fp
    | Some _ | None -> None
  in
  let memo =
    match shared with
    | Some sm -> sm.sm_memo
    | None -> Memo.create ~shards:(if jobs = 1 then 1 else 64) ~cap:memo_cap ~locked:(jobs > 1)
  in
  (* a pre-warmed shared table carries eviction history from earlier
     candidates; report only this run's evictions *)
  let evictions0 = Memo.evictions memo in
  let merge_forced = max 1 merge_batch in
  let sh =
    {
      baseline = (match baseline with Some b -> b | None -> root);
      pids;
      max_instructions = max_instructions_per_leg;
      max_paths;
      dedup;
      paranoid = paranoid_memo;
      check;
      machine = Kernel.machine_id root;
      visited = Atomic.make 0;
      hits = Atomic.make 0;
      cutoff = Atomic.make (max cutoff_min (min cutoff_max cutoff));
      depth_max = Atomic.make 0;
      memo;
      persist = persist_base;
      key_prefix =
        (match shared with Some sm -> generation_prefix sm.sm_generation | None -> "");
      key_tag;
      merge_forced;
      merge_min = min local_merge_min merge_forced;
    }
  in
  let sink = Kernel.trace root in
  let root_log = { rev_items = [] } in
  let stats =
    Array.init jobs (fun _ ->
        {
          st_steals = 0;
          st_pubs = 0;
          st_splits = 0;
          st_merges = 0;
          st_snapshots = 0;
          st_hash_bytes = 0;
        })
  in
  if jobs = 1 then begin
    (* Against a locked shared (campaign) table the sequential path
       still batches its writes through a private generation: the table
       may be contended by other candidates' outer workers, and
       [Memo.try_add]'s non-blocking write-through plus boundary merges
       is exactly the discipline the parallel path already uses. An
       unlocked shared table means no other worker exists, so write
       through directly and skip the double lookup. *)
    let w_local =
      match shared with
      | Some sm when Memo.locked sm.sm_memo -> Some (Hashtbl.create 512)
      | Some _ | None -> None
    in
    let w = { w_id = 0; w_local; w_pref = 0; w_stats = stats.(0) } in
    let x =
      { x_lease = max_paths; x_used = 0; x_pp = 0; x_ps = 0; x_capped = false; x_log = root_log }
    in
    ignore (explore_state sh None w x sink (Kernel.snapshot root) [] 0 : _ summary * bool);
    flush_pending x;
    merge_local sh w
  end
  else run_parallel sh sink root root_log ~jobs stats;
  let paths, stuck_legs, truncated, violations = settle ~max_paths root_log in
  (match memo_file with
  | Some file when persist_on ->
    (* persist only safe summaries: a warm cache can skip subtrees but
       never silence a violation *)
    let safe = ref [] in
    Memo.iter memo (fun e s ->
        if s.s_violations = [] then
          safe := (e, { Memo.Persist.p_paths = s.s_paths; p_stuck = s.s_stuck }) :: !safe);
    Memo.Persist.save ~file ~scenario:memo_key ~net:memo_net ~root:root_fp !safe
  | Some _ | None -> ());
  let counters = Uldma_obs.Counters.create () in
  Array.iteri
    (fun i st ->
      let p = Printf.sprintf "explorer.d%d." i in
      Uldma_obs.Counters.add counters (p ^ "steals") st.st_steals;
      Uldma_obs.Counters.add counters (p ^ "publications") st.st_pubs;
      Uldma_obs.Counters.add counters (p ^ "lease_splits") st.st_splits;
      Uldma_obs.Counters.add counters (p ^ "memo_merges") st.st_merges)
    stats;
  let total f = Array.fold_left (fun n st -> n + f st) 0 stats in
  {
    paths;
    violations;
    truncated;
    states_visited = Atomic.get sh.visited;
    dedup_hits = Atomic.get sh.hits;
    stuck_legs;
    evictions = Memo.evictions memo - evictions0;
    steals = total (fun s -> s.st_steals);
    publications = total (fun s -> s.st_pubs);
    lease_splits = total (fun s -> s.st_splits);
    memo_merges = total (fun s -> s.st_merges);
    cutoff = Atomic.get sh.cutoff;
    (* +1 for the seed snapshot of [root], which is never advanced in
       place because it is the dedup baseline *)
    snapshots = total (fun s -> s.st_snapshots) + 1;
    bytes_hashed = total (fun s -> s.st_hash_bytes);
    counters;
  }
