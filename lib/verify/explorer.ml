open Uldma_bus
open Uldma_os

type 'v result = {
  paths : int;
  violations : ('v * int list) list;
  truncated : bool;
  states_visited : int;
  dedup_hits : int;
  stuck_legs : int;
  evictions : int;
  steals : int;
}

(* Engine-visible transactions issued by [pid] so far, from the bus's
   O(1) per-pid counter. Kernel accesses (context-switch hooks, pid -1)
   and other processes' drained stores live in other slots and so never
   count as the leg's NI access. Only deltas within one leg matter, so
   the counter's absolute value (which spans the snapshot lineage) is
   irrelevant. *)
let ni_accesses kernel pid = Bus.pid_access_count (Kernel.bus kernel) pid

let advance_one_leg kernel pid ~max_instructions =
  let start = ni_accesses kernel pid in
  let rec loop n =
    if n >= max_instructions then `Stuck
    else
      match Kernel.step_pid kernel pid with
      | `Not_runnable -> `Exited
      | `Ok -> if ni_accesses kernel pid > start then `Progress else loop (n + 1)
  in
  loop 0

(* The pseudo-pid of the "let the wire drain" leg: instead of running a
   process to its next NI access, the machine idles forward to the next
   in-flight transfer completion. Only offered when a timed backend has
   a transfer in flight (Kernel.next_transfer_deadline = Some), so the
   Null backend's schedule trees — and goldens — are untouched. Chosen
   outside any real pid range (real pids start at 0; -1 is the kernel). *)
let wait_leg = -2

(* One scheduling leg: a real pid runs to its next NI access, the wait
   leg idles to the next completion. Every call site (sequential DFS,
   the expansion loop, and the work-stealing publish path) must go
   through here so stolen wait legs behave identically. *)
let advance_leg kernel leg ~max_instructions =
  if leg = wait_leg then
    if Kernel.advance_to_next_completion kernel then `Progress else `Stuck
  else advance_one_leg kernel leg ~max_instructions

(* ------------------------------------------------------------------ *)
(* State-deduplicated, optionally multi-domain search.

   The memo table maps a state's canonical encoding
   ([Kernel.state_encoding] — the engine-visible state; the live-pid
   set, which is the only schedule-relevant remainder, is part of it)
   to the *summary* of its fully-explored subtree. Because the key is
   the full encoding string, a hash collision can only cost a shard
   imbalance, never a false merge. A summary stores violation
   schedules as suffixes relative to its state; a memo hit re-emits
   them under the current prefix, in their original discovery order —
   so dedup on/off (and any job count) produce the identical [paths]
   count, the identical violation list, and even the identical order.
   Summaries are only stored for subtrees explored without hitting the
   path budget ("clean"), and a memo hit is only taken when its whole
   path count still fits the budget; otherwise the state is re-expanded
   so truncated runs count exactly like the plain DFS.

   The memo is *bounded* (Memo: two generations per shard, rotate on
   full): an evicted summary only means its state re-expands on the
   next encounter, so peak memory is capped without changing any
   answer. An optional persistent cache (?memo_file) seeds lookups
   with safe summaries from earlier runs of the same scenario build. *)

type 'v summary = {
  s_paths : int;
  s_violations : ('v * int list) list; (* suffix schedules, forward *)
  s_stuck : int;
}

type 'v shared = {
  root : Kernel.t; (* encoding baseline: pages still shared with it are skipped *)
  pids : int list;
  max_instructions : int;
  max_paths : int;
  dedup : bool;
  check : Kernel.t -> 'v option;
  machine : int;
  paths : int Atomic.t;
  stuck : int Atomic.t;
  visited : int Atomic.t;
  hits : int Atomic.t;
  steals : int Atomic.t;
  truncated : bool Atomic.t;
  memo_lookup : string -> 'v summary option;
  memo_store : string -> 'v summary -> unit;
}

(* A subtree-root task: everything a domain needs to continue the DFS
   from an interior node it took over. Tasks carry no result slot —
   violations are keyed by their full schedule, which is a total order
   (see [canonical_order] below), so any assignment of tasks to domains
   reassembles into the sequential output. *)
type task = { t_kernel : Kernel.t; t_schedule_rev : int list; t_depth : int }

(* Work-stealing hooks threaded through the recursion. [sp_want]
   answers "is anyone hungry and is this node worth splitting?";
   [sp_publish] pushes a ready subtree root onto the worker's own
   deque, where idle domains steal it from the top. Sequential
   exploration passes [None] and is bit-for-bit the old DFS. *)
type split = { sp_want : int -> bool; sp_publish : task -> unit }

let note sh sink kernel depth kind =
  if Uldma_obs.Trace.enabled sink then
    Uldma_obs.Trace.emit sink ~at:(Kernel.now_ps kernel) ~machine:sh.machine ~pid:(-1)
      (match kind with
      | `Fork -> Uldma_obs.Trace.Explorer_fork { depth }
      | `Prune reason -> Uldma_obs.Trace.Explorer_prune { depth; reason }
      | `Dedup -> Uldma_obs.Trace.Explorer_dedup { depth }
      | `Steal -> Uldma_obs.Trace.Explorer_steal { depth }
      | `Violation detail -> Uldma_obs.Trace.Oracle_violation { detail })

let empty_summary = { s_paths = 0; s_violations = []; s_stuck = 0 }

(* Explore [kernel]'s subtree; returns its summary and whether it is
   complete ("clean": no path-budget prune and no re-split inside, safe
   to memoize). Discovered violations are also pushed onto [out]
   (newest first) with their full schedules, preserving global DFS
   discovery order. With [split = Some _], a node whose siblings are
   published to thieves returns unclean — its summary no longer covers
   the whole subtree — but all counters and violations stay globally
   exact because the published tasks account for themselves. *)
let rec explore_state sh split sink out kernel schedule_rev depth =
  if Atomic.get sh.paths >= sh.max_paths then begin
    Atomic.set sh.truncated true;
    note sh sink kernel depth (`Prune "max_paths");
    (empty_summary, false)
  end
  else begin
    let encoding =
      if sh.dedup then Some (Kernel.state_encoding ~relative_to:sh.root kernel) else None
    in
    let hit = match encoding with Some e -> sh.memo_lookup e | None -> None in
    match hit with
    | Some s when Atomic.get sh.paths + s.s_paths <= sh.max_paths ->
      ignore (Atomic.fetch_and_add sh.paths s.s_paths : int);
      ignore (Atomic.fetch_and_add sh.stuck s.s_stuck : int);
      Atomic.incr sh.hits;
      note sh sink kernel depth `Dedup;
      if s.s_violations <> [] then begin
        let prefix = List.rev schedule_rev in
        List.iter (fun (v, suffix) -> out := (v, prefix @ suffix) :: !out) s.s_violations
      end;
      (s, true)
    | Some _ | None -> (
      Atomic.incr sh.visited;
      (* the runnable set is computed once per node (it was previously
         recomputed inside a List.mem per candidate pid) *)
      let live = Kernel.runnable_pids kernel in
      let runnable = List.filter (fun pid -> List.mem pid live) sh.pids in
      (* with a transfer in flight, "wait for it" is one more explorable
         leg, ordered after every real pid (canonical_order ranks
         unknown pids last, matching this expansion order); a node is
         terminal only when nothing can run *and* nothing is draining *)
      let legs =
        match Kernel.next_transfer_deadline kernel with
        | Some _ -> runnable @ [ wait_leg ]
        | None -> runnable
      in
      match legs with
      | [] ->
        ignore (Atomic.fetch_and_add sh.paths 1 : int);
        let s =
          match sh.check kernel with
          | Some v ->
            note sh sink kernel depth (`Violation "oracle check failed on a completed schedule");
            out := (v, List.rev schedule_rev) :: !out;
            { s_paths = 1; s_violations = [ (v, []) ]; s_stuck = 0 }
          | None -> { s_paths = 1; s_violations = []; s_stuck = 0 }
        in
        (match encoding with Some e -> sh.memo_store e s | None -> ());
        (s, true)
      | first :: rest ->
        (* Re-split: when a thief is hungry, publish every sibling leg
           except the first as a fresh subtree-root task and keep only
           the first for ourselves. The published legs are advanced
           here (one NI access each) so a stolen task is immediately
           expandable; ownership of each fork transfers wholesale to
           whichever domain pops or steals it. *)
        let published =
          match split with
          | Some sp when rest <> [] && sp.sp_want depth ->
            List.iter
              (fun pid ->
                if Atomic.get sh.paths >= sh.max_paths then Atomic.set sh.truncated true
                else begin
                  let fork = Kernel.snapshot kernel in
                  note sh sink fork depth `Fork;
                  match advance_leg fork pid ~max_instructions:sh.max_instructions with
                  | `Progress | `Exited ->
                    sp.sp_publish
                      { t_kernel = fork; t_schedule_rev = pid :: schedule_rev; t_depth = depth + 1 }
                  | `Stuck ->
                    Atomic.incr sh.stuck;
                    note sh sink fork depth (`Prune "stuck leg")
                end)
              rest;
            true
          | _ -> false
        in
        let to_expand = if published then [ first ] else legs in
        let acc_paths = ref 0 and acc_viol = ref [] and acc_stuck = ref 0 in
        let clean = ref (not published) in
        List.iter
          (fun pid ->
            if Atomic.get sh.paths >= sh.max_paths then begin
              Atomic.set sh.truncated true;
              clean := false
            end
            else begin
              let fork = Kernel.snapshot kernel in
              note sh sink fork depth `Fork;
              match advance_leg fork pid ~max_instructions:sh.max_instructions with
              | `Progress | `Exited ->
                let s, c =
                  explore_state sh split sink out fork (pid :: schedule_rev) (depth + 1)
                in
                acc_paths := !acc_paths + s.s_paths;
                List.iter (fun (v, sfx) -> acc_viol := (v, pid :: sfx) :: !acc_viol) s.s_violations;
                acc_stuck := !acc_stuck + s.s_stuck;
                if not c then clean := false
              | `Stuck ->
                (* prune just this leg: the pid spun past the
                   instruction budget without an NI access — its
                   siblings' interleavings are still explored *)
                Atomic.incr sh.stuck;
                incr acc_stuck;
                note sh sink fork depth (`Prune "stuck leg")
            end)
          to_expand;
        let s =
          { s_paths = !acc_paths; s_violations = List.rev !acc_viol; s_stuck = !acc_stuck }
        in
        if !clean then (match encoding with Some e -> sh.memo_store e s | None -> ());
        (s, !clean))
  end

(* ------------------------------------------------------------------ *)
(* Canonical result order. A violation's schedule doubles as its
   position in the DFS: children of every node are expanded in [pids]
   order, so the sequential explorer emits violations in lexicographic
   order of their schedules under the pid -> index-in-[pids] ranking
   (memo re-emissions splice stored suffixes at exactly the tree
   position the plain DFS would reach them). Schedules are unique (one
   terminal per schedule, one violation per terminal), so sorting the
   pooled parallel output by that ranking reproduces the sequential
   list exactly — any task-to-domain assignment, any steal order. *)
let canonical_order pids violations =
  let rank =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i pid -> Hashtbl.replace tbl pid i) pids;
    fun pid -> match Hashtbl.find_opt tbl pid with Some i -> i | None -> max_int
  in
  let rec cmp a b =
    match (a, b) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs, y :: ys ->
      let c = compare (rank x) (rank y) in
      if c <> 0 then c else cmp xs ys
  in
  List.sort (fun (_, s1) (_, s2) -> cmp s1 s2) violations

(* ------------------------------------------------------------------ *)
(* Work-stealing parallel driver. Every domain owns a private
   Chase–Lev deque (Ws_deque: atomics only, no mutex on the hot path).
   The root task seeds domain 0; from then on load balance is dynamic:
   a worker expanding a node while some domain is hungry publishes the
   node's unexpanded sibling legs onto its own deque (bottom), keeps
   descending into the first leg, and thieves steal from the top — so
   a thief always takes the *largest* (shallowest) subtree the victim
   has published, and a long-running subtree keeps shedding work
   instead of being pinned to whoever popped it (the PR-3 design's
   one-shot sequential prefix cut could leave a domain stuck with one
   giant subtree).

   Termination: an atomic in-flight counter is incremented *before*
   every publish and decremented after the popped/stolen task's
   subtree completes; a worker finding its deque empty hunts until it
   steals or the counter reaches zero, which cannot happen while any
   task is queued or running.

   Domain-safety is unchanged from PR 3: a task's snapshot lineage is
   owned by exactly one domain at a time (the publisher finishes the
   leg before the push, and the deque's CAS hands the fork to exactly
   one thief); cross-lineage pages are only read. The shared pieces
   are the atomic counters, the sharded bounded memo (immutable
   summary values — a racy duplicate expansion computes the same
   summary, costing only time), and per-worker trace sinks merged
   under a lock at the end. *)

let run_parallel sh root_sink root ~jobs =
  let deques = Array.init jobs (fun _ -> Uldma_util.Ws_deque.create ()) in
  let in_flight = Atomic.make 0 in
  let hungry = Atomic.make 0 in
  let outs = Array.make jobs [] in
  let merge_mutex = Mutex.create () in
  let tracing = Uldma_obs.Trace.enabled root_sink in
  let publish_to dq t =
    Atomic.incr in_flight;
    Uldma_util.Ws_deque.push dq t
  in
  publish_to deques.(0) { t_kernel = Kernel.snapshot root; t_schedule_rev = []; t_depth = 0 };
  let worker i () =
    let sink = if tracing then Uldma_obs.Trace.create () else Uldma_obs.Trace.null in
    let own = deques.(i) in
    let split =
      Some
        {
          (* split while someone is idle, but stop once our own deque
             has a healthy backlog (publishing more would only shred
             the memo's subtree locality) and below a depth where
             subtrees are too small to be worth shipping *)
          sp_want =
            (fun depth -> depth < 48 && Atomic.get hungry > 0 && Uldma_util.Ws_deque.size own < 16);
          sp_publish = (fun t -> publish_to own t);
        }
    in
    let out = ref [] in
    let run_task ~stolen t =
      if tracing then Kernel.attach_trace t.t_kernel sink ~machine:sh.machine;
      if stolen then begin
        Atomic.incr sh.steals;
        note sh sink t.t_kernel t.t_depth `Steal
      end;
      ignore
        (explore_state sh split sink out t.t_kernel t.t_schedule_rev t.t_depth
          : _ summary * bool);
      Atomic.decr in_flight
    in
    let steal_once () =
      let rec go j =
        if j >= jobs then None
        else if j = i then go (j + 1)
        else
          match Uldma_util.Ws_deque.steal deques.(j) with
          | Some _ as t -> t
          | None -> go (j + 1)
      in
      go 0
    in
    let rec drain () =
      match Uldma_util.Ws_deque.pop own with
      | Some t ->
        run_task ~stolen:false t;
        drain ()
      | None ->
        (* own deque stays empty until we run something (only the owner
           pushes to it), so go hungry and hunt *)
        if Atomic.get in_flight > 0 then begin
          Atomic.incr hungry;
          hunt ()
        end
    and hunt () =
      match steal_once () with
      | Some t ->
        Atomic.decr hungry;
        run_task ~stolen:true t;
        drain ()
      | None ->
        if Atomic.get in_flight = 0 then Atomic.decr hungry
        else begin
          Domain.cpu_relax ();
          hunt ()
        end
    in
    drain ();
    outs.(i) <- List.rev !out;
    if tracing then Mutex.protect merge_mutex (fun () -> Uldma_obs.Trace.absorb root_sink sink)
  in
  let domains = List.init jobs (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  canonical_order sh.pids (List.concat (Array.to_list outs))

(* ------------------------------------------------------------------ *)

let default_memo_cap = 1 lsl 18

let explore ~root ~pids ?(max_instructions_per_leg = 2000) ?(max_paths = 1_000_000)
    ?(dedup = true) ?(jobs = 1) ?(memo_cap = default_memo_cap) ?memo_file
    ?(memo_key = "default") ?(memo_net = "null") ~check () =
  let jobs = max 1 jobs in
  let root_fp = Kernel.fingerprint root in
  let persist_base =
    match memo_file with
    | Some file when dedup -> Memo.Persist.load ~file ~scenario:memo_key ~net:memo_net ~root:root_fp
    | Some _ | None -> None
  in
  let memo = Memo.create ~shards:(if jobs = 1 then 1 else 64) ~cap:memo_cap ~locked:(jobs > 1) in
  let memo_lookup, memo_store =
    if not dedup then ((fun _ -> None), fun _ _ -> ())
    else
      ( (fun e ->
          match Memo.find memo e with
          | Some _ as hit -> hit
          | None -> (
            match persist_base with
            | None -> None
            | Some tbl -> (
              match Hashtbl.find_opt tbl e with
              | Some { Memo.Persist.p_paths; p_stuck } ->
                (* persisted summaries are always violation-free (only
                   safe subtrees are saved); promote into the bounded
                   table so repeats stay cheap *)
                let s = { s_paths = p_paths; s_violations = []; s_stuck = p_stuck } in
                Memo.add memo e s;
                Some s
              | None -> None))),
        fun e s -> Memo.add memo e s )
  in
  let sh =
    {
      root;
      pids;
      max_instructions = max_instructions_per_leg;
      max_paths;
      dedup;
      check;
      machine = Kernel.machine_id root;
      paths = Atomic.make 0;
      stuck = Atomic.make 0;
      visited = Atomic.make 0;
      hits = Atomic.make 0;
      steals = Atomic.make 0;
      truncated = Atomic.make false;
      memo_lookup;
      memo_store;
    }
  in
  let sink = Kernel.trace root in
  let violations =
    if jobs = 1 then begin
      let out = ref [] in
      ignore (explore_state sh None sink out (Kernel.snapshot root) [] 0 : _ summary * bool);
      List.rev !out
    end
    else run_parallel sh sink root ~jobs
  in
  (match memo_file with
  | Some file when dedup ->
    (* persist only safe summaries: a warm cache can skip subtrees but
       never silence a violation *)
    let safe = ref [] in
    Memo.iter memo (fun e s ->
        if s.s_violations = [] then
          safe := (e, { Memo.Persist.p_paths = s.s_paths; p_stuck = s.s_stuck }) :: !safe);
    Memo.Persist.save ~file ~scenario:memo_key ~net:memo_net ~root:root_fp !safe
  | Some _ | None -> ());
  {
    paths = Atomic.get sh.paths;
    violations;
    truncated = Atomic.get sh.truncated;
    states_visited = Atomic.get sh.visited;
    dedup_hits = Atomic.get sh.hits;
    stuck_legs = Atomic.get sh.stuck;
    evictions = Memo.evictions memo;
    steals = Atomic.get sh.steals;
  }
