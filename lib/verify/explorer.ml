open Uldma_bus
open Uldma_os

type 'v result = {
  paths : int;
  violations : ('v * int list) list;
  truncated : bool;
}

(* Engine-visible transactions issued by [pid] so far, from the bus's
   O(1) per-pid counter. Kernel accesses (context-switch hooks, pid -1)
   and other processes' drained stores live in other slots and so never
   count as the leg's NI access. Only deltas within one leg matter, so
   the counter's absolute value (which spans the snapshot lineage) is
   irrelevant. *)
let ni_accesses kernel pid = Bus.pid_access_count (Kernel.bus kernel) pid

let advance_one_leg kernel pid ~max_instructions =
  let start = ni_accesses kernel pid in
  let rec loop n =
    if n >= max_instructions then `Stuck
    else
      match Kernel.step_pid kernel pid with
      | `Not_runnable -> `Exited
      | `Ok -> if ni_accesses kernel pid > start then `Progress else loop (n + 1)
  in
  loop 0

let explore ~root ~pids ?(max_instructions_per_leg = 2000) ?(max_paths = 1_000_000) ~check () =
  let paths = ref 0 in
  let violations = ref [] in
  let truncated = ref false in
  (* exploration events carry the root's machine id and no pid *)
  let sink = Kernel.trace root in
  let note kernel depth kind =
    if Uldma_obs.Trace.enabled sink then
      Uldma_obs.Trace.emit sink ~at:(Kernel.now_ps kernel) ~machine:(Kernel.machine_id root)
        ~pid:(-1)
        (match kind with
        | `Fork -> Uldma_obs.Trace.Explorer_fork { depth }
        | `Prune reason -> Uldma_obs.Trace.Explorer_prune { depth; reason }
        | `Violation detail -> Uldma_obs.Trace.Oracle_violation { detail })
  in
  let rec go kernel schedule depth =
    if !paths >= max_paths then begin
      truncated := true;
      note kernel depth (`Prune "max_paths")
    end
    else begin
      let runnable =
        List.filter (fun pid -> List.mem pid (Kernel.runnable_pids kernel)) pids
      in
      match runnable with
      | [] -> begin
        incr paths;
        match check kernel with
        | Some v ->
          note kernel depth (`Violation "oracle check failed on a completed schedule");
          violations := (v, List.rev schedule) :: !violations
        | None -> ()
      end
      | _ :: _ ->
        List.iter
          (fun pid ->
            if not !truncated then begin
              let fork = Kernel.snapshot kernel in
              note fork depth `Fork;
              match advance_one_leg fork pid ~max_instructions:max_instructions_per_leg with
              | `Progress | `Exited -> go fork (pid :: schedule) (depth + 1)
              | `Stuck ->
                truncated := true;
                note fork depth (`Prune "stuck leg")
            end)
          runnable
    end
  in
  go (Kernel.snapshot root) [] 0;
  { paths = !paths; violations = List.rev !violations; truncated = !truncated }
