open Uldma_bus
open Uldma_os

type 'v result = {
  paths : int;
  violations : ('v * int list) list;
  truncated : bool;
  states_visited : int;
  dedup_hits : int;
  stuck_legs : int;
}

(* Engine-visible transactions issued by [pid] so far, from the bus's
   O(1) per-pid counter. Kernel accesses (context-switch hooks, pid -1)
   and other processes' drained stores live in other slots and so never
   count as the leg's NI access. Only deltas within one leg matter, so
   the counter's absolute value (which spans the snapshot lineage) is
   irrelevant. *)
let ni_accesses kernel pid = Bus.pid_access_count (Kernel.bus kernel) pid

let advance_one_leg kernel pid ~max_instructions =
  let start = ni_accesses kernel pid in
  let rec loop n =
    if n >= max_instructions then `Stuck
    else
      match Kernel.step_pid kernel pid with
      | `Not_runnable -> `Exited
      | `Ok -> if ni_accesses kernel pid > start then `Progress else loop (n + 1)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* State-deduplicated, optionally multi-domain search.

   The memo table maps a state's canonical encoding
   ([Kernel.state_encoding] — the engine-visible state; the live-pid
   set, which is the only schedule-relevant remainder, is part of it)
   to the *summary* of its fully-explored subtree. Because the key is
   the full encoding string, a hash collision can only cost a shard
   imbalance, never a false merge. A summary stores violation
   schedules as suffixes relative to its state; a memo hit re-emits
   them under the current prefix, in their original discovery order —
   so dedup on/off (and any job count) produce the identical [paths]
   count, the identical violation list, and even the identical order.
   Summaries are only stored for subtrees explored without hitting the
   path budget ("clean"), and a memo hit is only taken when its whole
   path count still fits the budget; otherwise the state is re-expanded
   so truncated runs count exactly like the plain DFS. *)

type 'v summary = {
  s_paths : int;
  s_violations : ('v * int list) list; (* suffix schedules, forward *)
  s_stuck : int;
}

type 'v shared = {
  root : Kernel.t; (* encoding baseline: pages still shared with it are skipped *)
  pids : int list;
  max_instructions : int;
  max_paths : int;
  dedup : bool;
  check : Kernel.t -> 'v option;
  machine : int;
  paths : int Atomic.t;
  stuck : int Atomic.t;
  visited : int Atomic.t;
  hits : int Atomic.t;
  truncated : bool Atomic.t;
  memo_lookup : string -> 'v summary option;
  memo_store : string -> 'v summary -> unit;
}

let note sh sink kernel depth kind =
  if Uldma_obs.Trace.enabled sink then
    Uldma_obs.Trace.emit sink ~at:(Kernel.now_ps kernel) ~machine:sh.machine ~pid:(-1)
      (match kind with
      | `Fork -> Uldma_obs.Trace.Explorer_fork { depth }
      | `Prune reason -> Uldma_obs.Trace.Explorer_prune { depth; reason }
      | `Dedup -> Uldma_obs.Trace.Explorer_dedup { depth }
      | `Steal -> Uldma_obs.Trace.Explorer_steal { depth }
      | `Violation detail -> Uldma_obs.Trace.Oracle_violation { detail })

let empty_summary = { s_paths = 0; s_violations = []; s_stuck = 0 }

(* Explore [kernel]'s subtree; returns its summary and whether it is
   complete ("clean": no path-budget prune inside, safe to memoize).
   Discovered violations are also pushed onto [out] (newest first) with
   their full schedules, preserving global DFS discovery order. *)
let rec explore_state sh sink out kernel schedule_rev depth =
  if Atomic.get sh.paths >= sh.max_paths then begin
    Atomic.set sh.truncated true;
    note sh sink kernel depth (`Prune "max_paths");
    (empty_summary, false)
  end
  else begin
    let encoding =
      if sh.dedup then Some (Kernel.state_encoding ~relative_to:sh.root kernel) else None
    in
    let hit = match encoding with Some e -> sh.memo_lookup e | None -> None in
    match hit with
    | Some s when Atomic.get sh.paths + s.s_paths <= sh.max_paths ->
      ignore (Atomic.fetch_and_add sh.paths s.s_paths : int);
      ignore (Atomic.fetch_and_add sh.stuck s.s_stuck : int);
      Atomic.incr sh.hits;
      note sh sink kernel depth `Dedup;
      if s.s_violations <> [] then begin
        let prefix = List.rev schedule_rev in
        List.iter (fun (v, suffix) -> out := (v, prefix @ suffix) :: !out) s.s_violations
      end;
      (s, true)
    | Some _ | None -> (
      Atomic.incr sh.visited;
      (* the runnable set is computed once per node (it was previously
         recomputed inside a List.mem per candidate pid) *)
      let live = Kernel.runnable_pids kernel in
      let runnable = List.filter (fun pid -> List.mem pid live) sh.pids in
      match runnable with
      | [] ->
        ignore (Atomic.fetch_and_add sh.paths 1 : int);
        let s =
          match sh.check kernel with
          | Some v ->
            note sh sink kernel depth (`Violation "oracle check failed on a completed schedule");
            out := (v, List.rev schedule_rev) :: !out;
            { s_paths = 1; s_violations = [ (v, []) ]; s_stuck = 0 }
          | None -> { s_paths = 1; s_violations = []; s_stuck = 0 }
        in
        (match encoding with Some e -> sh.memo_store e s | None -> ());
        (s, true)
      | _ :: _ ->
        let acc_paths = ref 0 and acc_viol = ref [] and acc_stuck = ref 0 in
        let clean = ref true in
        List.iter
          (fun pid ->
            if Atomic.get sh.paths >= sh.max_paths then begin
              Atomic.set sh.truncated true;
              clean := false
            end
            else begin
              let fork = Kernel.snapshot kernel in
              note sh sink fork depth `Fork;
              match advance_one_leg fork pid ~max_instructions:sh.max_instructions with
              | `Progress | `Exited ->
                let s, c = explore_state sh sink out fork (pid :: schedule_rev) (depth + 1) in
                acc_paths := !acc_paths + s.s_paths;
                List.iter (fun (v, sfx) -> acc_viol := (v, pid :: sfx) :: !acc_viol) s.s_violations;
                acc_stuck := !acc_stuck + s.s_stuck;
                if not c then clean := false
              | `Stuck ->
                (* prune just this leg: the pid spun past the
                   instruction budget without an NI access — its
                   siblings' interleavings are still explored *)
                Atomic.incr sh.stuck;
                incr acc_stuck;
                note sh sink fork depth (`Prune "stuck leg")
            end)
          runnable;
        let s =
          { s_paths = !acc_paths; s_violations = List.rev !acc_viol; s_stuck = !acc_stuck }
        in
        if !clean then (match encoding with Some e -> sh.memo_store e s | None -> ());
        (s, !clean))
  end

(* ------------------------------------------------------------------ *)
(* Parallel driver: a sequential prefix expansion seeds a deque of
   subtree-root tasks, then [jobs] domains drain it. Each task's
   snapshot lineage is owned by exactly one domain (Phys_mem's COW
   ownership protocol is only mutated within a lineage; pages shared
   *across* lineages are never written in place), so no kernel state is
   shared between domains. The shared pieces are the atomic counters,
   the mutex-guarded task deque, the sharded mutex-guarded memo table
   (whose values are immutable summaries — a racy duplicate expansion
   of the same state computes the same summary, costing only time),
   and per-domain trace sinks merged into the root sink under a lock
   at the end. Violations land in a per-task slot and are concatenated
   in task (DFS prefix) order, so the result is deterministic and
   identical to the sequential explorer's whenever the path budget is
   not hit. *)

type 'v task = { t_index : int; t_kernel : Kernel.t; t_schedule_rev : int list; t_depth : int }

let collect_tasks sh sink root ~jobs =
  (* cut depth: enough prefix levels that every domain has several
     subtrees to steal; terminals shallower than the cut become
     single-state tasks *)
  let fanout = max 2 (List.length sh.pids) in
  let target = jobs * 4 in
  let cut =
    let rec go d width = if width >= target || d >= 8 then d else go (d + 1) (width * fanout) in
    go 1 fanout
  in
  let tasks = ref [] and n = ref 0 in
  let push kernel schedule_rev depth =
    tasks := { t_index = !n; t_kernel = kernel; t_schedule_rev = schedule_rev; t_depth = depth } :: !tasks;
    incr n
  in
  let rec seed kernel schedule_rev depth =
    if depth >= cut then push kernel schedule_rev depth
    else begin
      let live = Kernel.runnable_pids kernel in
      let runnable = List.filter (fun pid -> List.mem pid live) sh.pids in
      match runnable with
      | [] -> push kernel schedule_rev depth
      | _ :: _ ->
        List.iter
          (fun pid ->
            let fork = Kernel.snapshot kernel in
            note sh sink fork depth `Fork;
            match advance_one_leg fork pid ~max_instructions:sh.max_instructions with
            | `Progress | `Exited -> seed fork (pid :: schedule_rev) (depth + 1)
            | `Stuck ->
              Atomic.incr sh.stuck;
              note sh sink fork depth (`Prune "stuck leg"))
          runnable
    end
  in
  seed (Kernel.snapshot root) [] 0;
  (List.rev !tasks, !n)

let run_parallel sh root_sink root ~jobs =
  let tasks, n_tasks = collect_tasks sh root_sink root ~jobs in
  let results = Array.make n_tasks [] in
  let deque = ref tasks in
  let deque_mutex = Mutex.create () in
  let merge_mutex = Mutex.create () in
  let pop () =
    Mutex.protect deque_mutex (fun () ->
        match !deque with
        | [] -> None
        | t :: rest ->
          deque := rest;
          Some t)
  in
  let tracing = Uldma_obs.Trace.enabled root_sink in
  let worker () =
    let sink = if tracing then Uldma_obs.Trace.create () else Uldma_obs.Trace.null in
    let rec drain () =
      match pop () with
      | None -> ()
      | Some t ->
        if tracing then Kernel.attach_trace t.t_kernel sink ~machine:sh.machine;
        note sh sink t.t_kernel t.t_depth `Steal;
        let out = ref [] in
        ignore (explore_state sh sink out t.t_kernel t.t_schedule_rev t.t_depth : _ summary * bool);
        results.(t.t_index) <- List.rev !out;
        drain ()
    in
    drain ();
    if tracing then Mutex.protect merge_mutex (fun () -> Uldma_obs.Trace.absorb root_sink sink)
  in
  let domains = List.init jobs (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  List.concat (Array.to_list results)

(* ------------------------------------------------------------------ *)

let explore ~root ~pids ?(max_instructions_per_leg = 2000) ?(max_paths = 1_000_000)
    ?(dedup = true) ?(jobs = 1) ~check () =
  let jobs = max 1 jobs in
  let memo_lookup, memo_store =
    if not dedup then ((fun _ -> None), fun _ _ -> ())
    else if jobs = 1 then begin
      let tbl = Hashtbl.create 4096 in
      (Hashtbl.find_opt tbl, fun e s -> Hashtbl.replace tbl e s)
    end
    else begin
      (* sharded by string hash purely for lock spreading; equality is
         on the full encoding, so shard choice cannot affect results *)
      let n_shards = 64 in
      let shards = Array.init n_shards (fun _ -> (Mutex.create (), Hashtbl.create 256)) in
      let shard e = Hashtbl.hash e land (n_shards - 1) in
      ( (fun e ->
          let m, tbl = shards.(shard e) in
          Mutex.protect m (fun () -> Hashtbl.find_opt tbl e)),
        fun e s ->
          let m, tbl = shards.(shard e) in
          Mutex.protect m (fun () -> Hashtbl.replace tbl e s) )
    end
  in
  let sh =
    {
      root;
      pids;
      max_instructions = max_instructions_per_leg;
      max_paths;
      dedup;
      check;
      machine = Kernel.machine_id root;
      paths = Atomic.make 0;
      stuck = Atomic.make 0;
      visited = Atomic.make 0;
      hits = Atomic.make 0;
      truncated = Atomic.make false;
      memo_lookup;
      memo_store;
    }
  in
  let sink = Kernel.trace root in
  let violations =
    if jobs = 1 then begin
      let out = ref [] in
      ignore (explore_state sh sink out (Kernel.snapshot root) [] 0 : _ summary * bool);
      List.rev !out
    end
    else run_parallel sh sink root ~jobs
  in
  {
    paths = Atomic.get sh.paths;
    violations;
    truncated = Atomic.get sh.truncated;
    states_visited = Atomic.get sh.visited;
    dedup_hits = Atomic.get sh.hits;
    stuck_legs = Atomic.get sh.stuck;
  }
