(* Bounded two-generation sharded memo + persistent cache; see the mli
   for the design contract. *)

(* FNV-1a, 64-bit, over every byte of the string. Int64 arithmetic
   keeps the full avalanche of the high bits (a native-int variant
   would lose bit 63 and, on 32-bit, nearly everything). *)
let fnv1a64 (s : string) : int64 =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to String.length s - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i)))) prime
  done;
  !h

let shard_of_string ~shards s =
  (* fold the high half in so the mask sees all 64 bits *)
  let h = fnv1a64 s in
  let folded = Int64.logxor h (Int64.shift_right_logical h 32) in
  Int64.to_int folded land (shards - 1)

type 'a shard = {
  lock : Mutex.t;
  mutable hot : (string, 'a) Hashtbl.t;
  mutable cold : (string, 'a) Hashtbl.t;
}

type 'a t = {
  shards : 'a shard array;
  cap : int; (* per-shard hot capacity *)
  locked : bool;
  evicted : int Atomic.t;
  owners : int Atomic.t array; (* domain that first merged into the shard, -1 *)
}

let create ~shards ~cap ~locked =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg "Memo.create: shards must be a positive power of two";
  if cap < 1 then invalid_arg "Memo.create: cap must be positive";
  let per_shard = max 1 (cap / shards) in
  {
    shards =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); hot = Hashtbl.create 64; cold = Hashtbl.create 0 });
    cap = per_shard;
    locked;
    evicted = Atomic.make 0;
    owners = Array.init shards (fun _ -> Atomic.make (-1));
  }

let shard_index t key = shard_of_string ~shards:(Array.length t.shards) key

let with_shard_at t idx f =
  let sh = t.shards.(idx) in
  if t.locked then Mutex.protect sh.lock (fun () -> f sh) else f sh

let with_shard t key f = with_shard_at t (shard_index t key) f

let find_in_shard sh key =
  match Hashtbl.find_opt sh.hot key with
  | Some _ as hit -> hit
  | None -> (
    match Hashtbl.find_opt sh.cold key with
    | Some v as hit ->
      (* promotion: a touched entry survives the next rotation *)
      Hashtbl.replace sh.hot key v;
      hit
    | None -> None)

let find t key = with_shard t key (fun sh -> find_in_shard sh key)

let find_with_shard t key =
  let idx = shard_index t key in
  (with_shard_at t idx (fun sh -> find_in_shard sh key), idx)

(* caller holds the shard lock (or the table is unlocked) *)
let add_in_shard t sh key v =
  Hashtbl.replace sh.hot key v;
  if Hashtbl.length sh.hot >= t.cap then begin
    (* rotate: cold's entries (minus any promoted duplicates, which
       live on in hot) are gone for good *)
    ignore (Atomic.fetch_and_add t.evicted (Hashtbl.length sh.cold) : int);
    sh.cold <- sh.hot;
    sh.hot <- Hashtbl.create t.cap
  end

let add t key v = with_shard t key (fun sh -> add_in_shard t sh key v)

let try_add t key v =
  let sh = t.shards.(shard_index t key) in
  if not t.locked then begin
    add_in_shard t sh key v;
    true
  end
  else if Mutex.try_lock sh.lock then begin
    Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) (fun () -> add_in_shard t sh key v);
    true
  end
  else false

let shard_owner t idx = Atomic.get t.owners.(idx)

let merge_batch t ~domain tbl =
  let nshards = Array.length t.shards in
  (* bucket the batch by shard first so each shard's lock is taken at
     most once per merge, however many entries land in it *)
  let per = Array.make nshards [] in
  Hashtbl.iter (fun k v -> let i = shard_of_string ~shards:nshards k in per.(i) <- (k, v) :: per.(i)) tbl;
  let n = ref 0 in
  Array.iteri
    (fun i kvs ->
      if kvs <> [] then begin
        (* pin ownership to the first domain that populates the shard;
           later merges leave it, so thieves can steer toward the
           domain whose generations feed the shards they read *)
        ignore (Atomic.compare_and_set t.owners.(i) (-1) domain : bool);
        with_shard_at t i (fun sh ->
            List.iter
              (fun (k, v) ->
                incr n;
                add_in_shard t sh k v)
              kvs)
      end)
    per;
  !n

let evictions t = Atomic.get t.evicted
let locked t = t.locked

(* Distinct keys: a cold entry promoted back into hot (find_in_shard)
   is alive in both generations and must not count twice. *)
let length t =
  Array.fold_left
    (fun n sh ->
      let cold_only = ref 0 in
      Hashtbl.iter (fun k _ -> if not (Hashtbl.mem sh.hot k) then incr cold_only) sh.cold;
      n + Hashtbl.length sh.hot + !cold_only)
    0 t.shards

let iter t f =
  Array.iter
    (fun sh ->
      Hashtbl.iter f sh.hot;
      Hashtbl.iter (fun k v -> if not (Hashtbl.mem sh.hot k) then f k v) sh.cold)
    t.shards

(* ------------------------------------------------------------------ *)

module Persist = struct
  type entry = { p_paths : int; p_stuck : int }

  (* v2: sections are keyed by (scenario, net backend) and the state
     encoding carries in-flight transfer deadlines. A v1 file keyed by
     scenario alone would alias a timed run onto a cached Null summary
     (the root state has no transfers in flight, so the root
     fingerprint guard cannot tell the backends apart) — and its
     summaries were computed against the pre-deadline encoding anyway,
     so v1 files are rejected wholesale by the schema check.

     v3: entries are keyed by the 16-byte Fp128 fingerprint key instead
     of the full encoding string — files shrink by the sum of all
     encoding strings and warm loads stop unmarshalling megabytes. A v2
     file's string keys would never match a fingerprint lookup (silent
     cold start at best, and mixing key spaces in one table is wrong),
     so v2 files are rejected wholesale too. *)
  let schema = 3

  let magic = "uldma-explorer-memo"

  (* The per-section key. NUL cannot appear in a CLI scenario name or a
     backend cache key, so the concatenation is unambiguous. *)
  let section ~scenario ~net = scenario ^ "\x00" ^ net

  (* the whole file is one marshalled value:
     (magic, schema, section -> (root fingerprint, encoding -> entry)) *)
  type file_body = (string, int64 * (string, entry) Hashtbl.t) Hashtbl.t

  let read_file file : file_body option =
    match open_in_bin file with
    | exception Sys_error _ -> None
    | ic ->
      let body =
        match (Marshal.from_channel ic : string * int * file_body) with
        | m, v, body when m = magic && v = schema -> Some body
        | _ -> None
        | exception _ -> None
      in
      close_in_noerr ic;
      body

  let load ~file ~scenario ~net ~root =
    match read_file file with
    | None -> None
    | Some body -> (
      match Hashtbl.find_opt body (section ~scenario ~net) with
      | Some (stored_root, tbl) when Int64.equal stored_root root -> Some tbl
      | Some _ | None -> None)

  (* Serialise the read-merge-write against other savers (threads,
     domains or processes). Without it, two concurrent saves both read
     the same pre-existing body and the loser of the rename race
     silently clobbers the winner's freshly written section — exactly
     the campaign workload, where many (scenario, net) cells share one
     cache file. Cross-process: an exclusive advisory lock on a
     sidecar ([file] itself is replaced by rename, which would orphan
     a lock taken on the old inode). Same-process domains: POSIX
     record locks are per-process (a second lockf in the same process
     succeeds immediately), so a process-local mutex does that half. *)
  let save_mutex = Mutex.create ()

  let with_file_lock file f =
    Mutex.protect save_mutex @@ fun () ->
    match Unix.openfile (file ^ ".lock") Unix.[ O_CREAT; O_RDWR; O_CLOEXEC ] 0o644 with
    | exception Unix.Unix_error _ -> f () (* degrade to unlocked rather than lose the save *)
    | fd ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
          f ())

  let save ~file ~scenario ~net ~root entries =
    with_file_lock file @@ fun () ->
    (* re-read under the lock: merge-on-save — sections written by
       other scenarios since our last load survive this save *)
    let body = match read_file file with Some b -> b | None -> Hashtbl.create 4 in
    let key = section ~scenario ~net in
    let tbl =
      match Hashtbl.find_opt body key with
      | Some (stored_root, tbl) when Int64.equal stored_root root -> tbl
      | Some _ | None -> Hashtbl.create (List.length entries)
    in
    List.iter (fun (k, e) -> Hashtbl.replace tbl k e) entries;
    Hashtbl.replace body key (root, tbl);
    (* Unique tmp name: a fixed [file ^ ".tmp"] lets two concurrent
       runs interleave their in-flight writes and rename a torn file
       into place. The pid suffix keeps the write private until the
       atomic rename; a stale tmp from a crashed run is just garbage
       with that run's pid, never a corrupted [file]. *)
    let tmp = Printf.sprintf "%s.%d.tmp" file (Unix.getpid ()) in
    match open_out_bin tmp with
    | exception Sys_error _ -> ()
    | oc -> (
      match
        Marshal.to_channel oc (magic, schema, body) [];
        close_out oc;
        Sys.rename tmp file
      with
      | () -> ()
      | exception Sys_error _ ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ()))
end
