open Uldma_mem
open Uldma_mmu
open Uldma_dma
open Uldma_os

type intent = {
  pid : int;
  vsrc : int;
  vdst : int;
  psrc : int;
  pdst : int;
  size : int;
  requests : int;
}

type violation =
  | Unattributed_transfer of Transfer.t
  | Rights_violation of { intent : intent; missing : string }
  | Phantom_success of { pid : int; reported : int; started : int }
  | Lost_transfer of { pid : int; reported : int; started : int }

type report = {
  violations : violation list;
  transfers_checked : int;
  intents_checked : int;
}

let pp_violation ppf = function
  | Unattributed_transfer tr ->
    Format.fprintf ppf "unattributed transfer (mixed/forged arguments): %a" Transfer.pp tr
  | Rights_violation { intent; missing } ->
    Format.fprintf ppf "rights violation by pid %d (%s): %#x -> %#x (%d bytes)" intent.pid missing
      intent.psrc intent.pdst intent.size
  | Phantom_success { pid; reported; started } ->
    Format.fprintf ppf "pid %d observed %d successes but only %d transfers started" pid reported
      started
  | Lost_transfer { pid; reported; started } ->
    Format.fprintf ppf
      "pid %d: %d transfers started but the stub observed only %d successes (started-but-reported-failed)"
      pid started reported

let matches intent (tr : Transfer.t) =
  tr.Transfer.src = intent.psrc && tr.Transfer.dst = intent.pdst && tr.Transfer.size = intent.size

let rights_violation kernel intent =
  match Kernel.find_process kernel intent.pid with
  | None -> Some "process does not exist"
  | Some p ->
    let space = p.Process.addr_space in
    if not (Addr_space.check_range space ~vaddr:intent.vsrc ~len:intent.size ~perms:Perms.read_only)
    then Some "no read right on source range"
    else if
      not (Addr_space.check_range space ~vaddr:intent.vdst ~len:intent.size ~perms:Perms.write_only)
    then Some "no write right on destination range"
    else None

let check ~kernel ~intents ~reported_successes =
  let transfers = Engine.transfers (Kernel.engine kernel) in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  (* 1 + 2: every started transfer must match a declared intent *)
  List.iter
    (fun tr -> if not (List.exists (fun i -> matches i tr) intents) then add (Unattributed_transfer tr))
    transfers;
  (* declared intents must themselves be within the declarer's rights *)
  List.iter
    (fun intent ->
      match rights_violation kernel intent with
      | Some missing -> add (Rights_violation { intent; missing })
      | None -> ())
    intents;
  (* 3: per process, successes observed = transfers started for it *)
  let started_for pid =
    List.length
      (List.filter
         (fun tr -> List.exists (fun i -> i.pid = pid && matches i tr) intents)
         transfers)
  in
  List.iter
    (fun (pid, reported) ->
      let started = started_for pid in
      if reported > started then add (Phantom_success { pid; reported; started })
      else if started > reported then add (Lost_transfer { pid; reported; started }))
    reported_successes;
  let violations = List.rev !violations in
  (* mirror every violation into the kernel's structured trace *)
  let sink = Kernel.trace kernel in
  if Uldma_obs.Trace.enabled sink then
    List.iter
      (fun v ->
        Uldma_obs.Trace.emit sink ~at:(Kernel.now_ps kernel)
          ~machine:(Kernel.machine_id kernel) ~pid:(-1)
          (Uldma_obs.Trace.Oracle_violation { detail = Format.asprintf "%a" pp_violation v }))
      violations;
  {
    violations;
    transfers_checked = List.length transfers;
    intents_checked = List.length intents;
  }

let ok report = report.violations = []

let pp_report ppf r =
  if r.violations = [] then
    Format.fprintf ppf "oracle: OK (%d transfers, %d intents)" r.transfers_checked r.intents_checked
  else begin
    Format.fprintf ppf "oracle: %d violation(s):" (List.length r.violations);
    List.iter (fun v -> Format.fprintf ppf "@\n  - %a" pp_violation v) r.violations
  end

let intent_of_regions kernel p ~vsrc ~vdst ~size ~requests =
  {
    pid = p.Process.pid;
    vsrc;
    vdst;
    psrc = Kernel.user_paddr kernel p vsrc;
    pdst = Kernel.user_paddr kernel p vdst;
    size;
    requests;
  }
