(* uldma_cli: run the paper's experiments selectively from the command
   line, list the registry, or inspect the mechanism catalog.

     uldma_cli list
     uldma_cli run table1 [--csv out.csv] [--iterations N]
     uldma_cli all
     uldma_cli mechanisms
*)

module Experiments = Uldma_sim.Experiments
module Api = Uldma.Api
module Mech = Uldma.Mech
module Trace = Uldma_obs.Trace
module Export = Uldma_obs.Export
open Cmdliner

(* --trace support: install an enabled ambient sink around the body so
   every kernel the experiment builds reports into it, then export.
   All tracing chatter goes to stderr: stdout stays golden-stable. *)

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write a structured event trace of the run to $(docv).")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl); ("summary", `Summary) ]) `Chrome
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Trace output format: $(b,chrome) (chrome://tracing / Perfetto JSON), $(b,jsonl) (one \
           event per line) or $(b,summary) (per-layer event counts).")

let with_trace trace_file trace_format f =
  match trace_file with
  | None -> f ()
  | Some path ->
    let sink = Trace.create () in
    Trace.set_enabled sink true;
    Trace.with_ambient sink f;
    (match trace_format with
    | (`Chrome | `Jsonl) as fmt -> Export.to_file fmt path sink
    | `Summary ->
      let oc = open_out path in
      output_string oc (Uldma_util.Tbl.render (Export.summary sink));
      close_out oc);
    Printf.eprintf "(trace: %d events%s -> %s)\n%!" (Trace.total sink)
      (let d = Trace.dropped sink in
       if d > 0 then Printf.sprintf " (%d dropped at ring cap)" d else "")
      path

let list_cmd =
  let doc = "List every reproducible table/figure." in
  let run () =
    let tbl =
      Uldma_util.Tbl.create ~title:"experiments"
        ~columns:
          [ ("id", Uldma_util.Tbl.Left); ("paper", Uldma_util.Tbl.Left); ("title", Uldma_util.Tbl.Left) ]
    in
    List.iter
      (fun (e : Experiments.experiment) ->
        Uldma_util.Tbl.add_row tbl [ e.Experiments.id; e.Experiments.paper_ref; e.Experiments.title ])
      Experiments.all;
    Uldma_util.Tbl.print tbl
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_experiment id csv iterations trace_file trace_format =
  match Experiments.find id with
  | None ->
    Printf.eprintf "unknown experiment %S; try `uldma_cli list'\n" id;
    exit 1
  | Some e ->
    with_trace trace_file trace_format (fun () ->
        let tbl =
          if id = "table1" then Experiments.table1 ?iterations ()
          else e.Experiments.run ()
        in
        Uldma_util.Tbl.print tbl;
        match csv with
        | Some path ->
          let oc = open_out path in
          output_string oc (Uldma_util.Tbl.to_csv tbl);
          close_out oc;
          Printf.printf "(csv written to %s)\n" path
        | None -> ())

let run_cmd =
  let doc = "Run one experiment by id." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.") in
  let iterations =
    Arg.(value & opt (some int) None & info [ "iterations" ] ~docv:"N" ~doc:"Initiations per mechanism (table1 only).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_experiment $ id $ csv $ iterations $ trace_file_arg $ trace_format_arg)

let all_cmd =
  let doc = "Run every experiment in registry order." in
  let run trace_file trace_format =
    with_trace trace_file trace_format (fun () ->
        List.iter
          (fun (e : Experiments.experiment) ->
            Printf.printf "--- %s [%s] ---\n%!" e.Experiments.id e.Experiments.paper_ref;
            Uldma_util.Tbl.print (e.Experiments.run ()))
          Experiments.all)
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ trace_file_arg $ trace_format_arg)

let mechanisms_cmd =
  let doc = "Show the mechanism catalog." in
  let run () =
    let tbl =
      Uldma_util.Tbl.create ~title:"DMA initiation mechanisms"
        ~columns:
          [
            ("name", Uldma_util.Tbl.Left);
            ("NI accesses", Uldma_util.Tbl.Right);
            ("kernel modification", Uldma_util.Tbl.Left);
            ("engine personality", Uldma_util.Tbl.Left);
          ]
    in
    List.iter
      (fun (m : Mech.t) ->
        Uldma_util.Tbl.add_row tbl
          [
            m.Mech.name;
            string_of_int m.Mech.ni_accesses;
            (if m.Mech.requires_kernel_modification then "required" else "none");
            (match m.Mech.engine_mechanism with
            | None -> "any"
            | Some Uldma_dma.Engine.Shrimp_mapped -> "shrimp-mapped"
            | Some Uldma_dma.Engine.Shrimp_two_step -> "two-step"
            | Some Uldma_dma.Engine.Flash -> "flash"
            | Some Uldma_dma.Engine.Key_based -> "key-contexts"
            | Some Uldma_dma.Engine.Ext_shadow -> "ext-shadow"
            | Some Uldma_dma.Engine.Ext_shadow_stateless -> "ext-shadow (no contexts)"
            | Some (Uldma_dma.Engine.Rep_args _) -> "sequence-recogniser"
            | Some Uldma_dma.Engine.Iommu -> "iotlb-translator"
            | Some Uldma_dma.Engine.Capio -> "capability-checker");
          ])
      Api.all;
    Uldma_util.Tbl.print tbl
  in
  Cmd.v (Cmd.info "mechanisms" ~doc) Term.(const run $ const ())

let sweep_cmd =
  let doc =
    "Custom latency sweep: measure initiation for chosen mechanisms across bus frequencies \
     and syscall costs."
  in
  let mechanisms =
    Arg.(
      value
      & opt (list string) [ "kernel"; "ext-shadow"; "rep-args"; "key-based" ]
      & info [ "mechanisms" ] ~docv:"NAMES" ~doc:"Comma-separated mechanism names.")
  in
  let bus_mhz =
    Arg.(
      value
      & opt (list float) [ 12.5 ]
      & info [ "bus-mhz" ] ~docv:"MHZ" ~doc:"Comma-separated bus frequencies in MHz.")
  in
  let syscall_cycles =
    Arg.(
      value
      & opt int 2300
      & info [ "syscall-cycles" ] ~docv:"N" ~doc:"Empty-syscall cost in CPU cycles.")
  in
  let iterations =
    Arg.(value & opt int 500 & info [ "iterations" ] ~docv:"N" ~doc:"Initiations per cell.")
  in
  let run mech_names bus_list syscall iterations =
    let tbl =
      Uldma_util.Tbl.create
        ~title:(Printf.sprintf "custom sweep (syscall = %d cycles, %d initiations/cell)" syscall iterations)
        ~columns:
          (("mechanism", Uldma_util.Tbl.Left)
          :: List.map (fun mhz -> (Printf.sprintf "%g MHz (us)" mhz, Uldma_util.Tbl.Right)) bus_list)
    in
    List.iter
      (fun name ->
        match Api.find name with
        | None ->
          Printf.eprintf "unknown mechanism %S; try `uldma_cli mechanisms'\n" name;
          exit 1
        | Some mech ->
          let cells =
            List.map
              (fun mhz ->
                let timing =
                  Uldma_bus.Timing.with_syscall_cycles
                    (Uldma_bus.Timing.with_bus_hz Uldma_bus.Timing.alpha3000_300
                       (int_of_float (mhz *. 1e6)))
                    syscall
                in
                let base = { Uldma_os.Kernel.default_config with Uldma_os.Kernel.timing } in
                let r = Uldma_sim.Measure.initiation ~base ~iterations mech in
                Printf.sprintf "%.2f" r.Uldma_sim.Measure.us_per_initiation)
              bus_list
          in
          Uldma_util.Tbl.add_row tbl (name :: cells))
      mech_names;
    Uldma_util.Tbl.print tbl
  in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ mechanisms $ bus_mhz $ syscall_cycles $ iterations)

let timeline_cmd =
  let doc = "Replay an attack scenario and print its access timeline (the paper's interleaving diagrams)." in
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("fig5", `Fig5); ("fig6", `Fig6); ("shrimp2", `Shrimp2); ("rep5", `Rep5) ])) None
      & info [] ~docv:"SCENARIO")
  in
  let run which trace_file trace_format =
    with_trace trace_file trace_format @@ fun () ->
    let module Scenario = Uldma_workload.Scenario in
    let s, schedule =
      match which with
      | `Fig5 -> (Scenario.fig5 (), Scenario.fig5_schedule)
      | `Fig6 -> (Scenario.fig6 (), Scenario.fig6_schedule)
      | `Shrimp2 -> (Scenario.shrimp2_race ~hook:false, Scenario.shrimp2_schedule)
      | `Rep5 -> (Scenario.rep5 (), Scenario.fig5_schedule)
    in
    Scenario.run_legs s schedule;
    Scenario.finish s ();
    let tbl =
      Uldma_util.Tbl.create ~title:"engine-visible access timeline"
        ~columns:
          [ ("t (us)", Uldma_util.Tbl.Right); ("actor", Uldma_util.Tbl.Left); ("access", Uldma_util.Tbl.Left) ]
    in
    List.iter
      (fun (at, actor, access) ->
        Uldma_util.Tbl.add_row tbl
          [ Printf.sprintf "%.2f" (Uldma_util.Units.to_us at); actor; access ])
      (Scenario.access_timeline s);
    Uldma_util.Tbl.print tbl;
    List.iter
      (fun tr -> Format.printf "started: %a@." Uldma_dma.Transfer.pp tr)
      (Scenario.transfers s);
    Format.printf "%a@." Uldma_verify.Oracle.pp_report (Scenario.report s)
  in
  Cmd.v (Cmd.info "timeline" ~doc) Term.(const run $ which $ trace_file_arg $ trace_format_arg)

let explore_cmd =
  let doc =
    "Exhaustively explore NI-access interleavings of a contested scenario against the safety \
     oracle (the Fig. 8 proof for one variant), with state dedup and optional multicore search."
  in
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("fig5", `Fig5);
                  ("fig6", `Fig6);
                  ("rep5", `Rep5);
                  ("splice", `Splice);
                  ("ext-shadow", `Ext_shadow);
                  ("key-based", `Key_based);
                  ("pal", `Pal);
                  ("key-3", `Key3);
                  ("ext-shadow-3", `Ext_shadow3);
                  ("rep5-3", `Rep5_3);
                  ("iommu", `Iommu);
                  ("capio", `Capio);
                  ("iommu-fig5", `Iommu_fig5);
                  ("capio-fig5", `Capio_fig5);
                  ("capio-launder", `Capio_launder);
                  ("iommu-3", `Iommu3);
                  ("capio-3", `Capio3);
                ]))
          None
      & info [] ~docv:"SCENARIO")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Explore with $(docv) worker domains (default 1).")
  in
  let no_dedup =
    Arg.(
      value
      & flag
      & info [ "no-dedup" ]
          ~doc:"Disable state deduplication: expand every schedule even through states already seen.")
  in
  let paranoid_memo =
    Arg.(
      value
      & flag
      & info [ "paranoid-memo" ]
          ~doc:
            "Key the dedup memo on full canonical encoding strings instead of streamed 126-bit \
             fingerprints. Slower, but key equality is then exactly state equality — the \
             verification mode tools/diff_explore runs differentially against the fingerprint \
             default. Ignores --memo-file (the persistent cache stores fingerprint keys).")
  in
  let max_paths =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "max-paths" ] ~docv:"N" ~doc:"Stop after counting $(docv) schedules (default 1M).")
  in
  let memo_cap =
    Arg.(
      value
      & opt int 262_144
      & info [ "memo-cap" ] ~docv:"N"
          ~doc:
            "Bound the dedup memo to $(docv) subtree summaries (hot generation); older entries \
             are evicted and their states re-expanded on re-encounter. Results are unchanged; \
             only peak memory and time move.")
  in
  let memo_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "memo-file" ] ~docv:"FILE"
          ~doc:
            "Persist violation-free subtree summaries to $(docv) and reuse them on later runs of \
             the same scenario and net backend (guarded by a schema version and the root state \
             fingerprint).")
  in
  let net =
    Arg.(
      value
      & opt string "null"
      & info [ "net" ] ~docv:"BACKEND"
          ~doc:
            "DMA wire-time model: $(b,null) (transfers complete instantly, the default), or a \
             latency-modelling link — $(b,atm155), $(b,atm622), $(b,gigabit), $(b,hic). Timed \
             backends are supported on the fig5, rep5, key-based, iommu, capio, iommu-fig5, \
             capio-fig5 and capio-launder scenarios; with one, transfer completion becomes an \
             explorable scheduling leg (pseudo-pid -2 in schedules).")
  in
  let tick_ps =
    Arg.(
      value
      & opt int Uldma_net.Backend.default_tick_ps
      & info [ "tick-ps" ] ~docv:"PS"
          ~doc:
            "Quantise timed-backend transfer durations up to multiples of $(docv) picoseconds \
             (default 1000000 = 1us). Coarser ticks merge more states; durations are never \
             rounded down to zero.")
  in
  let cutoff =
    Arg.(
      value
      & opt int 8
      & info [ "cutoff" ] ~docv:"N"
          ~doc:
            "Initial adaptive publication cutoff: a tree node is offered to thieves only when \
             its estimated subtree size clears $(docv) (default 8; clamped to [1, 2^20]). Higher \
             values keep more subtrees sequential. Pure performance knob — results are \
             identical at any setting.")
  in
  let merge_batch =
    Arg.(
      value
      & opt int 256
      & info [ "merge-batch" ] ~docv:"N"
          ~doc:
            "Force a domain-local memo generation into the shared table once it holds $(docv) \
             entries (default 256); boundary merges scale down with it. Pure performance knob.")
  in
  let mech_override =
    Arg.(
      value
      & opt (some (enum [ ("iommu", `Iommu); ("capio", `Capio) ])) None
      & info [ "mech" ] ~docv:"MECH"
          ~doc:
            "Re-target the $(b,fig5) splicer at another victim mechanism: $(b,iommu) or \
             $(b,capio) (equivalent to the iommu-fig5 / capio-fig5 scenarios). Only valid with \
             the fig5 scenario.")
  in
  let run which mech_override jobs no_dedup paranoid_memo max_paths memo_cap memo_file net
      tick_ps cutoff merge_batch trace_file trace_format =
    with_trace trace_file trace_format @@ fun () ->
    let module Scenario = Uldma_workload.Scenario in
    let module Explorer = Uldma_verify.Explorer in
    let module Oracle = Uldma_verify.Oracle in
    let module Backend = Uldma_net.Backend in
    let which =
      match (which, mech_override) with
      | _, None -> which
      | `Fig5, Some `Iommu -> `Iommu_fig5
      | `Fig5, Some `Capio -> `Capio_fig5
      | _, Some _ ->
        prerr_endline "--mech only applies to the fig5 scenario";
        exit 1
    in
    let backend =
      match Backend.of_string ~tick_ps net with
      | Ok b -> b
      | Error msg ->
        prerr_endline msg;
        exit 1
    in
    (* fig5/rep5/key-based have timed variants; the rest run Null only *)
    let name, memo_key, scenario =
      match which with
      | `Fig5 -> ("rep-args-3 (Fig. 5)", "fig5", `Timed (fun ?net () -> Scenario.fig5 ?net ()))
      | `Fig6 -> ("rep-args-4 (Fig. 6)", "fig6", `Untimed (fun () -> Scenario.fig6 ()))
      | `Rep5 -> ("rep-args-5 (Fig. 7)", "rep5", `Timed (fun ?net () -> Scenario.rep5 ?net ()))
      | `Splice ->
        ("rep-args-5 vs store-splice", "splice", `Untimed (fun () -> Scenario.rep5_splice ()))
      | `Ext_shadow ->
        ( "ext-shadow, two tenants",
          "ext-shadow",
          `Untimed (fun () -> Scenario.ext_shadow_contested ()) )
      | `Key_based ->
        ( "key-based, two tenants",
          "key-based",
          `Timed (fun ?net () -> Scenario.key_contested ?net ()) )
      | `Pal -> ("pal, two tenants", "pal", `Untimed (fun () -> Scenario.pal_contested ()))
      | `Key3 ->
        ( "key-based, three contested processes",
          "key-3",
          `Untimed (fun () -> Scenario.key_contested3 ()) )
      | `Ext_shadow3 ->
        ( "ext-shadow, three contested processes",
          "ext-shadow-3",
          `Untimed (fun () -> Scenario.ext_shadow_contested3 ()) )
      | `Rep5_3 ->
        ("rep-args-5 vs two attackers", "rep5-3", `Untimed (fun () -> Scenario.rep5_contested3 ()))
      | `Iommu ->
        ( "iommu, two tenants",
          "iommu",
          `Timed (fun ?net () -> Scenario.iommu_contested ?net ()) )
      | `Capio ->
        ( "capio, two tenants",
          "capio",
          `Timed (fun ?net () -> Scenario.capio_contested ?net ()) )
      | `Iommu_fig5 ->
        ( "iommu vs Fig. 5 splicer",
          "iommu-fig5",
          `Timed (fun ?net () -> Scenario.iommu_fig5 ?net ()) )
      | `Capio_fig5 ->
        ( "capio vs Fig. 5 splicer",
          "capio-fig5",
          `Timed (fun ?net () -> Scenario.capio_fig5 ?net ()) )
      | `Capio_launder ->
        ( "capio vs capability launderer",
          "capio-launder",
          `Timed (fun ?net () -> Scenario.capio_launder ?net ()) )
      | `Iommu3 ->
        ( "iommu, three contested processes",
          "iommu-3",
          `Untimed (fun () -> Scenario.iommu_contested3 ()) )
      | `Capio3 ->
        ( "capio, three contested processes",
          "capio-3",
          `Untimed (fun () -> Scenario.capio_contested3 ()) )
    in
    let s =
      match (scenario, backend) with
      | `Timed f, _ -> f ~net:backend ()
      | `Untimed f, Backend.Null -> f ()
      | `Untimed _, Backend.Linked _ ->
        Printf.eprintf "scenario %s has no timed variant; --net must be null\n" memo_key;
        exit 1
    in
    let memo_net = Backend.cache_key backend in
    let t0 = Unix.gettimeofday () in
    let r =
      Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ~max_paths
        ~dedup:(not no_dedup) ~paranoid_memo ~jobs ~memo_cap ?memo_file ~memo_key ~memo_net
        ~cutoff ~merge_batch ~check:(Scenario.oracle_check s) ()
    in
    let secs = Unix.gettimeofday () -. t0 in
    let tbl =
      Uldma_util.Tbl.create
        ~title:(Printf.sprintf "interleaving exploration: %s" name)
        ~columns:[ ("metric", Uldma_util.Tbl.Left); ("value", Uldma_util.Tbl.Right) ]
    in
    let row k v = Uldma_util.Tbl.add_row tbl [ k; v ] in
    (match backend with
    | Backend.Null -> ()
    | Backend.Linked _ ->
      row "net backend" (Format.asprintf "%a" Backend.pp backend);
      row "tick" (Format.asprintf "%a" Uldma_util.Units.pp_time tick_ps));
    row "schedules" (string_of_int r.Explorer.paths);
    row "violating schedules" (string_of_int (List.length r.Explorer.violations));
    row "states visited" (string_of_int r.Explorer.states_visited);
    row "dedup hits" (string_of_int r.Explorer.dedup_hits);
    row "stuck legs" (string_of_int r.Explorer.stuck_legs);
    row "memo evictions" (string_of_int r.Explorer.evictions);
    row "snapshots" (string_of_int r.Explorer.snapshots);
    if not no_dedup then begin
      row "memo keying" (if paranoid_memo then "paranoid (full encodings)" else "fingerprint-128");
      row "bytes hashed" (string_of_int r.Explorer.bytes_hashed)
    end;
    row "steals" (string_of_int r.Explorer.steals);
    if jobs > 1 then begin
      row "publications" (string_of_int r.Explorer.publications);
      row "lease splits" (string_of_int r.Explorer.lease_splits);
      row "memo merges" (string_of_int r.Explorer.memo_merges);
      row "cutoff (final)" (string_of_int r.Explorer.cutoff)
    end;
    row "complete" (if r.Explorer.truncated then "TRUNCATED" else "yes");
    row "jobs" (string_of_int (max 1 jobs));
    row "seconds" (Printf.sprintf "%.3f" secs);
    row "schedules/sec" (Printf.sprintf "%.0f" (float_of_int r.Explorer.paths /. secs));
    Uldma_util.Tbl.print tbl;
    (match r.Explorer.violations with
    | [] -> Printf.printf "verdict: SAFE under all explored schedules\n"
    | (v, schedule) :: _ as all ->
      Printf.printf "verdict: VULNERABLE (%d violating schedules)\n" (List.length all);
      Format.printf "first violation: %a@." Oracle.pp_violation v;
      Printf.printf "schedule: %s\n"
        (String.concat " " (List.map string_of_int schedule)));
    if r.Explorer.truncated then exit 2;
    if r.Explorer.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      const run $ which $ mech_override $ jobs $ no_dedup $ paranoid_memo $ max_paths $ memo_cap
      $ memo_file $ net $ tick_ps $ cutoff $ merge_batch $ trace_file_arg $ trace_format_arg)

let cluster_cmd =
  let module Kv = Uldma_workload.Kv_load in
  let module Backend = Uldma_net.Backend in
  let doc =
    "Drive a key-value load (thousands of client processes, millions of small GET/PUT transfers) \
     across an N-node co-simulated cluster and export tail latency per wire to \
     _results/BENCH_cluster.json."
  in
  let nodes =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size (default 4).")
  in
  let clients =
    Arg.(
      value
      & opt int 1000
      & info [ "clients" ] ~docv:"K"
          ~doc:"Simulated client processes, spread round-robin over the nodes (default 1000).")
  in
  let transfers =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "transfers" ] ~docv:"M" ~doc:"Total GET/PUT requests (default 1000000).")
  in
  let net =
    Arg.(
      value
      & opt string "atm155"
      & info [ "net" ] ~docv:"BACKEND"
          ~doc:
            "Headline wire, same spellings as $(b,explore --net): $(b,null), $(b,atm155), \
             $(b,atm622), $(b,gigabit), $(b,hic) (default atm155).")
  in
  let batch =
    Arg.(
      value
      & opt int 8
      & info [ "batch" ] ~docv:"D"
          ~doc:
            "Descriptors per doorbell (default 8). Each doorbell costs one verified initiation \
             sequence; descriptors are cheap cached stores into the per-process submission queue.")
  in
  let window =
    Arg.(
      value
      & opt int 32
      & info [ "window" ] ~docv:"W" ~doc:"Max outstanding requests per client (default 32).")
  in
  let value_size =
    Arg.(
      value
      & opt int 64
      & info [ "value-size" ] ~docv:"BYTES" ~doc:"Value payload size (default 64).")
  in
  let get_ratio =
    Arg.(
      value
      & opt float 0.5
      & info [ "get-ratio" ] ~docv:"R" ~doc:"Fraction of GETs, in [0,1] (default 0.5).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed (default 42).") in
  let mech =
    Arg.(
      value
      & opt string "ext-shadow"
      & info [ "mech" ] ~docv:"MECHANISM"
          ~doc:
            "Initiation mechanism to calibrate doorbell cost from, and to install on every \
             cluster node (default ext-shadow).")
  in
  let tick_ps =
    Arg.(
      value
      & opt int Backend.default_tick_ps
      & info [ "tick-ps" ] ~docv:"PS"
          ~doc:"Tick for the timed wires (default 1000000 = 1us); must be positive.")
  in
  let backends =
    Arg.(
      value
      & opt string "atm155,atm622,gigabit,hic"
      & info [ "backends" ] ~docv:"LIST"
          ~doc:"Comma-separated wires for the per-backend sweep (default all four timed links).")
  in
  let batch_net =
    Arg.(
      value
      & opt string "gigabit"
      & info [ "batch-net" ] ~docv:"BACKEND"
          ~doc:
            "Wire for the batch-vs-unbatched comparison (default gigabit: a fast link keeps the \
             client CPU — i.e. initiation cost — the bottleneck, which is the regime doorbell \
             batching targets).")
  in
  let out =
    Arg.(
      value
      & opt string (Filename.concat "_results" "BENCH_cluster.json")
      & info [ "out" ] ~docv:"FILE" ~doc:"Report path (default _results/BENCH_cluster.json).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Fan the backend sweep out over $(docv) domains (results are identical).")
  in
  let die msg =
    prerr_endline msg;
    exit 1
  in
  let run nodes clients transfers net batch window value_size get_ratio seed mech tick_ps backends
      batch_net out jobs =
    let params =
      match
        Kv.validate_params
          {
            Kv.nodes;
            clients;
            transfers;
            batch;
            window;
            value_size;
            get_ratio;
            seed;
            mech;
          }
      with
      | Ok p -> p
      | Error e -> die e
    in
    (* --tick-ps <= 0 and unknown backend names both surface here *)
    let resolve name =
      match Backend.of_string ~tick_ps name with Ok b -> b | Error e -> die e
    in
    let headline_backend = resolve net in
    ignore (headline_backend : Backend.t);
    let sweep_names =
      let named = String.split_on_char ',' backends |> List.map String.trim in
      let named = List.filter (fun s -> s <> "") named in
      if List.mem net named then named else net :: named
    in
    let sweep_backends = List.map (fun n -> (n, resolve n)) sweep_names in
    let bat_backend = resolve batch_net in
    let cal = match Kv.calibrate mech with Ok c -> c | Error e -> die e in
    let t0 = Unix.gettimeofday () in
    (* instruction-level leg: real kernels, real mesh, real packets *)
    let cluster =
      match Uldma.Session.cluster ~net ~tick_ps ~mech ~nodes () with
      | Ok c -> c
      | Error e -> die e
    in
    let burst_words = 64 in
    let cosim_bytes, cosim_packets = Kv.cosim_burst cluster ~words:burst_words in
    if cosim_bytes <> nodes * burst_words * 8 then
      die
        (Printf.sprintf "cosim validation failed: %d bytes delivered, expected %d" cosim_bytes
           (nodes * burst_words * 8));
    Printf.printf
      "cosim: %d nodes moved %d bytes (%d packets) through the %s mesh; calibrated %s: doorbell \
       %d ps, descriptor %d ps\n"
      nodes cosim_bytes cosim_packets net mech cal.Kv.initiation_ps cal.Kv.submit_ps;
    let sweep = Kv.sweep ~jobs params ~cal sweep_backends in
    let batch1 = Kv.run { params with Kv.batch = 1 } ~cal ~net:bat_backend in
    let batched = Kv.run params ~cal ~net:bat_backend in
    let wall = Unix.gettimeofday () -. t0 in
    let tbl =
      Uldma_util.Tbl.create
        ~title:
          (Printf.sprintf
             "KV service: %d nodes, %d clients, %d transfers, batch %d, %d-byte values"
             nodes clients transfers batch value_size)
        ~columns:
          [
            ("wire", Uldma_util.Tbl.Left);
            ("p50 us", Uldma_util.Tbl.Right);
            ("p99 us", Uldma_util.Tbl.Right);
            ("p999 us", Uldma_util.Tbl.Right);
            ("mean us", Uldma_util.Tbl.Right);
            ("k tx/s", Uldma_util.Tbl.Right);
            ("Gb/s", Uldma_util.Tbl.Right);
          ]
    in
    List.iter
      (fun (name, r) ->
        let pc q = float_of_int (Uldma_obs.Percentile.percentile r.Kv.latency q) /. 1e6 in
        Uldma_util.Tbl.add_row tbl
          [
            name;
            Printf.sprintf "%.1f" (pc 0.50);
            Printf.sprintf "%.1f" (pc 0.99);
            Printf.sprintf "%.1f" (pc 0.999);
            Printf.sprintf "%.1f" (Uldma_obs.Percentile.mean r.Kv.latency /. 1e6);
            Printf.sprintf "%.0f" (Kv.transfers_per_s r /. 1e3);
            Printf.sprintf "%.3f" (Kv.gbps r);
          ])
      sweep;
    Uldma_util.Tbl.print tbl;
    let report =
      {
        Kv.Report.params;
        cal;
        headline_net = net;
        sweep;
        batching = { Kv.Report.bat_net = batch_net; batch1; batched };
        cosim_nodes = nodes;
        cosim_bytes;
        cosim_packets;
      }
    in
    Printf.printf
      "doorbell batching on %s: batch=1 %.0f tx/s -> batch=%d %.0f tx/s (%.2fx)\n" batch_net
      (Kv.transfers_per_s batch1) batch (Kv.transfers_per_s batched)
      (Kv.Report.speedup report.Kv.Report.batching);
    Kv.Report.write ~path:out ~wall_seconds:wall report;
    Printf.printf "report: %s (schema v1, %.2fs wall)\n" out wall
  in
  Cmd.v
    (Cmd.info "cluster" ~doc)
    Term.(
      const run $ nodes $ clients $ transfers $ net $ batch $ window $ value_size $ get_ratio
      $ seed $ mech $ tick_ps $ backends $ batch_net $ out $ jobs)

let stub_cmd =
  let doc =
    "Print the instruction sequence a mechanism's stub emits (the paper's Figs. 1-4/7 as code)."
  in
  let mech_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"MECHANISM") in
  let run mech_name =
    match Api.find mech_name with
    | None ->
      Printf.eprintf "unknown mechanism %S; try `uldma_cli mechanisms'\n" mech_name;
      exit 1
    | Some mech ->
      (* build a minimal machine so prepare can allocate real contexts
         and mappings, then print the emitted DMA(r1, r2, r3) body *)
      let s = Uldma.Session.of_mech mech in
      let p = Uldma.Session.process s ~name:"stub" ~src_pages:1 ~dst_pages:1 () in
      let asm = Uldma_cpu.Asm.create () in
      p.Uldma.Session.emit_dma asm;
      Printf.printf
        "DMA stub for %s  (entry: r1 = vsource, r2 = vdestination, r3 = size; exit: r0 = status)\n\n"
        mech.Mech.name;
      Format.printf "%a" Uldma_cpu.Isa.pp_listing (Uldma_cpu.Asm.assemble asm);
      Printf.printf "\n%d engine accesses per initiation; kernel modification: %s\n"
        mech.Mech.ni_accesses
        (if mech.Mech.requires_kernel_modification then "REQUIRED" else "none");
      if mech.Mech.name = "pal" then begin
        Printf.printf "\nPAL body (installed once, executes uninterruptibly):\n";
        Format.printf "%a" Uldma_cpu.Isa.pp_listing Uldma.Pal_dma.pal_body
      end
  in
  Cmd.v (Cmd.info "stub" ~doc) Term.(const run $ mech_arg)

let campaign_cmd =
  let module Synth = Uldma_workload.Synth in
  let module Explorer = Uldma_verify.Explorer in
  let module Backend = Uldma_net.Backend in
  let doc =
    "Bounded adversary synthesis: enumerate every accomplice program up to --slots ops from the \
     S/L shadow-page grammar, explore each candidate exhaustively through the campaign engine \
     (one cross-candidate shared memo, outer-level parallel fan-out), and write the collusion \
     catalogue — which mechanism/backend cells admit collusion, with minimal witness programs."
  in
  let slots =
    Arg.(
      value
      & opt int 3
      & info [ "slots" ] ~docv:"N"
          ~doc:
            "Accomplice instruction slots: enumerate all canonical programs of 1..$(docv) ops \
             (4^n/2 per length n: 10 candidates at 2, 42 at 3, 682 at 5).")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. Split outer-first: up to $(docv) domains each run whole candidates \
             sequentially off a shared queue; intra-tree work-stealing only kicks in when \
             candidates are scarcer than domains.")
  in
  let max_paths =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "max-paths" ] ~docv:"N"
          ~doc:"Per-candidate schedule budget (default 1M).")
  in
  let mechs =
    Arg.(
      value
      & opt
          (list
             (enum
                [
                  ("rep3", Synth.Rep Uldma_dma.Seq_matcher.Three);
                  ("rep4", Synth.Rep Uldma_dma.Seq_matcher.Four);
                  ("rep5", Synth.Rep Uldma_dma.Seq_matcher.Five);
                  ("pal", Synth.Pal);
                  ("key", Synth.Key);
                  ("ext", Synth.Ext);
                  ("iommu", Synth.Iommu);
                  ("capio", Synth.Capio);
                ]))
          [ Synth.Rep Uldma_dma.Seq_matcher.Five ]
      & info [ "mechs" ] ~docv:"M,.."
          ~doc:
            "Mechanisms to grid over: rep3, rep4, rep5, pal, key, ext, iommu, capio \
             (default rep5).")
  in
  let nets =
    Arg.(
      value
      & opt (list string) [ "null" ]
      & info [ "nets" ] ~docv:"B,.."
          ~doc:
            "Net backends to grid over: null, atm155, atm622, gigabit, hic (default null).")
  in
  let tick_ps =
    Arg.(
      value
      & opt int Backend.default_tick_ps
      & info [ "tick-ps" ] ~docv:"PS" ~doc:"Timed-backend duration quantum (default 1us).")
  in
  let cutoff =
    Arg.(
      value
      & opt (some int) None
      & info [ "cutoff" ] ~docv:"N"
          ~doc:
            "Initial adaptive publication cutoff for intra-tree stealing (default: the \
             campaign policy — high when candidates are plentiful).")
  in
  let merge_batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "merge-batch" ] ~docv:"N"
          ~doc:"Forced domain-local memo merge threshold (default 256).")
  in
  let out =
    Arg.(
      value
      & opt string "_results/collusion_catalogue.csv"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the collusion catalogue CSV to $(docv).")
  in
  let run slots jobs max_paths mechs nets tick_ps cutoff merge_batch out =
    let nets =
      List.map
        (fun name ->
          match Backend.of_string ~tick_ps name with
          | Ok Backend.Null -> None
          | Ok b -> Some b
          | Error e ->
            prerr_endline e;
            exit 1)
        nets
    in
    let tbl =
      Uldma_util.Tbl.create ~title:"adversary-synthesis campaign"
        ~columns:
          [
            ("mech", Uldma_util.Tbl.Left);
            ("net", Uldma_util.Tbl.Left);
            ("candidates", Uldma_util.Tbl.Right);
            ("violating", Uldma_util.Tbl.Right);
            ("paths", Uldma_util.Tbl.Right);
            ("states", Uldma_util.Tbl.Right);
            ("hits", Uldma_util.Tbl.Right);
            ("seconds", Uldma_util.Tbl.Right);
            ("witness", Uldma_util.Tbl.Left);
          ]
    in
    (* one shared table across the whole grid; each cell bumps the key
       generation so cells can never alias each other's entries *)
    let shared = Explorer.create_shared ~cap:(1 lsl 20) () in
    let cells =
      List.concat_map
        (fun subject ->
          List.map
            (fun net ->
              let t0 = Unix.gettimeofday () in
              let cr =
                Synth.run_cell ?net ~slots ~jobs ~max_paths ~shared ?cutoff ?merge_batch
                  subject
              in
              let c = cr.Synth.cr_cell in
              Uldma_util.Tbl.add_row tbl
                [
                  c.Synth.cell_mech;
                  c.Synth.cell_net;
                  string_of_int c.Synth.cell_candidates;
                  string_of_int c.Synth.cell_violating;
                  string_of_int c.Synth.cell_paths;
                  string_of_int c.Synth.cell_states;
                  string_of_int c.Synth.cell_hits;
                  Printf.sprintf "%.2f" (Unix.gettimeofday () -. t0);
                  c.Synth.cell_witness;
                ];
              c)
            nets)
        mechs
    in
    Uldma_util.Tbl.print tbl;
    (try Unix.mkdir (Filename.dirname out) 0o755 with Unix.Unix_error _ -> ());
    Synth.write_catalogue out cells;
    Printf.printf "catalogue -> %s\n" out;
    List.iter
      (fun c ->
        if c.Synth.cell_violating > 0 then
          Printf.printf "collusion: %s/%s admits %d violating candidate(s); minimal witness %s (%s)\n"
            c.Synth.cell_mech c.Synth.cell_net c.Synth.cell_violating c.Synth.cell_witness
            c.Synth.cell_witness_kinds)
      cells;
    if List.exists (fun c -> c.Synth.cell_truncated > 0) cells then begin
      Printf.printf "WARNING: some candidates truncated by --max-paths; catalogue is incomplete\n";
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const run $ slots $ jobs $ max_paths $ mechs $ nets $ tick_ps $ cutoff $ merge_batch $ out)

let () =
  let doc = "User-level DMA without OS kernel modification - reproduction toolkit" in
  let info = Cmd.info "uldma_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            mechanisms_cmd;
            sweep_cmd;
            timeline_cmd;
            explore_cmd;
            campaign_cmd;
            cluster_cmd;
            stub_cmd;
          ]))
