(* @bench-smoke — a seconds-scale exercise of the perf-critical paths,
   wired into `dune runtest` so they cannot bit-rot between full bench
   runs: one small exhaustive exploration (fig5, known 126 schedules),
   a 10-iteration initiation measurement, and a clipped 3-process
   contested exploration driven through both new explorer mechanisms
   (work stealing at jobs=2 and bounded-memo eviction). Exits non-zero
   on any deviation. *)

module Scenario = Uldma_workload.Scenario
module Explorer = Uldma_verify.Explorer

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("bench-smoke: " ^ s); exit 1) fmt

let explore ?max_paths ?jobs ?memo_cap s =
  Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s) ?max_paths ?jobs
    ?memo_cap ~check:(Scenario.oracle_check s) ()

let () =
  let r = explore (Scenario.fig5 ()) in
  if r.Explorer.truncated then fail "fig5 exploration truncated";
  if r.Explorer.paths <> 126 then
    fail "fig5 exploration found %d schedules, expected 126" r.Explorer.paths;
  let m = Uldma_sim.Measure.initiation ~iterations:10 (Uldma.Api.find_exn "ext-shadow") in
  if m.Uldma_sim.Measure.successes <> 10 then
    fail "ext-shadow initiation: %d/10 succeeded" m.Uldma_sim.Measure.successes;
  (* 3-process contested workload, clipped by max_paths: the bounded
     memo must evict under a tiny cap and still count the same clipped
     frontier the sequential default-cap run reaches, and the
     work-stealing jobs=2 run on the untruncated small variant must
     reproduce the sequential results exactly *)
  let big () = Scenario.key_contested3 () in
  let r_cap = explore ~max_paths:2000 ~memo_cap:64 (big ()) in
  if not r_cap.Explorer.truncated then fail "key-3 clipped exploration should truncate";
  if r_cap.Explorer.evictions = 0 then fail "key-3 with memo_cap 64 evicted nothing";
  let small () = Scenario.ext_shadow_contested3 ~victim_repeat:1 ~tenant_repeat:1 () in
  let r_seq = explore (small ()) in
  let r_par = explore ~jobs:2 (small ()) in
  if r_seq.Explorer.truncated then fail "ext-shadow-3 (small) truncated";
  if r_par.Explorer.paths <> r_seq.Explorer.paths then
    fail "ext-shadow-3 jobs=2 found %d schedules, sequential %d" r_par.Explorer.paths
      r_seq.Explorer.paths;
  if
    List.map snd r_par.Explorer.violations <> List.map snd r_seq.Explorer.violations
    || r_par.Explorer.stuck_legs <> r_seq.Explorer.stuck_legs
  then fail "ext-shadow-3 jobs=2 diverged from the sequential run";
  Printf.printf
    "bench-smoke ok: fig5 %d schedules, ext-shadow %.2f us/initiation, key-3 clipped with %d \
     evictions, ext-shadow-3 %d schedules (jobs=2, %d steals)\n"
    r.Explorer.paths m.Uldma_sim.Measure.us_per_initiation r_cap.Explorer.evictions
    r_seq.Explorer.paths r_par.Explorer.steals
