(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper from the
   simulator (simulated time; see EXPERIMENTS.md for paper-vs-measured).

   Part 2 runs Bechamel micro-benchmarks of the *simulator itself*
   (real wall-clock time per simulated initiation path) — one
   Test.make per Table 1 row plus the attack-reproduction machinery —
   so regressions in the implementation are visible independently of
   the simulated-clock results. *)

module Experiments = Uldma_sim.Experiments
module Sim_measure = Uldma_sim.Measure
module Api = Uldma.Api

let line = String.make 78 '='

let results_dir = "_results"

let write_csv id tbl =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let oc = open_out (Filename.concat results_dir (id ^ ".csv")) in
  output_string oc (Uldma_util.Tbl.to_csv tbl);
  close_out oc

let run_experiments () =
  Printf.printf "%s\nPart 1: paper reproduction (simulated time)\n%s\n\n" line line;
  List.iter
    (fun (e : Experiments.experiment) ->
      Printf.printf "--- %s [%s] ---\n%!" e.Experiments.id e.Experiments.paper_ref;
      let tbl = e.Experiments.run () in
      Uldma_util.Tbl.print tbl;
      write_csv e.Experiments.id tbl)
    Experiments.all;
  Printf.printf "(CSV copies of every table written to %s/)\n" results_dir

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

open Bechamel
open Toolkit

let initiation_test name =
  let mech = Api.find_exn name in
  Test.make ~name:("simulate 10x " ^ name)
    (Staged.stage (fun () -> ignore (Sim_measure.initiation ~iterations:10 mech : Sim_measure.result)))

let attack_test =
  Test.make ~name:"simulate fig5 attack"
    (Staged.stage (fun () ->
         let s = Uldma_workload.Scenario.fig5 () in
         Uldma_workload.Scenario.run_legs s Uldma_workload.Scenario.fig5_schedule;
         Uldma_workload.Scenario.finish s ()))

let explore_rep5 ?dedup ?jobs ~max_paths () =
  let s = Uldma_workload.Scenario.rep5 () in
  let pids =
    [
      s.Uldma_workload.Scenario.victim.Uldma_os.Process.pid;
      s.Uldma_workload.Scenario.attacker.Uldma_os.Process.pid;
    ]
  in
  Uldma_verify.Explorer.explore ~root:s.Uldma_workload.Scenario.kernel ~pids ?dedup ?jobs
    ~max_paths
    ~check:(fun _ -> None) ()

let explorer_test =
  Test.make ~name:"explore rep5 schedules"
    (Staged.stage (fun () -> ignore (explore_rep5 ~max_paths:50 ())))

let tests =
  Test.make_grouped ~name:"uldma"
    ([ initiation_test "kernel"; initiation_test "ext-shadow"; initiation_test "rep-args";
       initiation_test "key-based"; initiation_test "pal" ]
    @ [ attack_test; explorer_test ])

let benchmark () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:None () in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bench_results results =
  Printf.printf "\n%s\nPart 2: simulator micro-benchmarks (real time, bechamel OLS)\n%s\n\n" line
    line;
  let tbl =
    Uldma_util.Tbl.create ~title:"wall-clock cost of the simulation paths"
      ~columns:[ ("benchmark", Uldma_util.Tbl.Left); ("time per run", Uldma_util.Tbl.Right) ]
  in
  Hashtbl.iter
    (fun _instance tbl_by_name ->
      Hashtbl.iter
        (fun name ols ->
          let cell =
            match Analyze.OLS.estimates ols with
            | Some (time :: _) -> Format.asprintf "%a" Uldma_util.Units.pp_time (int_of_float (time *. 1000.0))
            | Some [] | None -> "n/a"
          in
          Uldma_util.Tbl.add_row tbl [ name; cell ])
        tbl_by_name)
    results;
  Uldma_util.Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* Machine-readable perf trajectory *)

(* BENCH_explorer.json records the wall-clock throughput of the
   interleaving explorer (the repo's hottest verification path) and the
   simulated Table-1 initiation latency of each mechanism, so perf can
   be compared across PRs without parsing the human-readable tables.

   Schema v2 adds the state-dedup counters plus "no_dedup" and
   "parallel" sub-objects comparing the memoized sequential run
   against brute force and against an N-domain run.  All schema-v1
   keys are preserved; the headline "explorer" object is the default
   configuration (dedup on, jobs=1).

   Schema v3 adds the "scenarios3" object: the three-process contested
   workloads (~10^5..10^6 schedules each) explored at jobs = 1, 2 and
   4 with the work-stealing driver, recording per-jobs wall time,
   throughput and steal counts, the speedups vs jobs=1, the dedup
   ratio (schedules per expanded state — how much of the tree the memo
   collapses), and a bounded-memo run (small memo_cap) proving the
   exploration still completes exactly while evicting. All v2 keys are
   preserved unchanged.

   Schema v4 adds the "timed" object: rep5 re-explored under each
   latency-modelling net backend (atm155/atm622/hic at the default
   tick), recording the enlarged schedule tree (wait legs), the dedup
   ratio the relative-deadline state encoding achieves on it, wall
   time and throughput, and a per-backend differential check —
   brute-force (no-dedup) and jobs=4 runs must reproduce the memoized
   sequential result exactly. All v3 keys are preserved unchanged.

   Schema v5 changes three things (see EXPERIMENTS.md):
   - honest timing: every timed leg (sequential and parallel alike)
     runs one untimed warmup in the same configuration and then
     reports the *minimum* of its timed repetitions, and no leg uses a
     persistent memo cache — so speedups compare legs of identical
     warmth instead of folding cold-start noise into whichever leg ran
     first;
   - one dedup_ratio definition everywhere: hits / (hits +
     states_visited), the fraction of node arrivals answered by the
     memo (v4 mixed two unrelated formulas: the headline entry used
     states/brute-states = 0.1114 while scenarios3 used
     paths/states = 1085.7);
   - the work-stealing internals become visible: a top-level "cores"
     field, per-jobs "publications"/"steals", per-scenario "cutoff",
     "memo_merges" and "lease_splits" (from the jobs=4 run), a
     "domains" object with the per-domain Uldma_obs.Counters, and a
     "truncated_parallel" object checking that a max_paths-clipped run
     is identical at jobs 1/2/4 (the lease mechanism). All v4 keys
     are preserved.

   Schema v6 surfaces the fingerprint-keyed memo work (DESIGN.md 5g):
   the headline "explorer" object gains "snapshots"/"bytes_hashed"
   totals with per-node ratios (a node arrival = memo miss + memo hit
   = states_visited + dedup_hits) and "encode_ns_per_node" — a
   dedicated microbench timing one memo-key computation on a fixed
   mid-exploration state, in both the default fingerprint mode and the
   string-keyed paranoid mode ("encode_ns_per_node_paranoid") — and
   each scenarios3 entry gains "snapshots_per_node",
   "bytes_hashed_per_node" and a timed "paranoid" leg whose results
   must be identical to the fingerprint run (the in-bench version of
   tools/diff_explore's paranoid-vs-fingerprint check). The
   encode_ns_per_node number is CI-gated against this committed file.
   All v5 keys are preserved.

   Schema v7 adds the "campaign" object: the bounded adversary family
   of every exact-length-5 accomplice program on the rep5 scenario
   (512 canonical candidates — the family with maximal cross-candidate
   sharing, since memo hits across candidates need matching bus access
   counts) explored two ways. The cold baseline runs each candidate
   through its own private Explorer.explore, sequentially — exactly
   what a pre-campaign caller had to do. The shared legs run the same
   candidate array through Campaign.run at jobs 1, 2 and 4: one
   cross-candidate memo (generation-tagged, residual-program keyed)
   with outer-level candidate fan-out. Recorded per leg: wall seconds,
   aggregate candidates/sec, and results_identical_to_cold — the
   per-candidate (paths, truncated, violation kind + schedule) facts
   must match the cold run exactly (the soundness bit CI gates).
   "state_ratio" is cold/shared expanded states — the sharing itself,
   independent of core count; "speedup_vs_cold" is cold seconds over
   the best shared leg's seconds, so on a single-core runner it shows
   the jobs=1 sharing-only speedup and on multi-core runners the
   sharing multiplies with the outer fan-out. Campaign legs are single
   timed runs (each is tens of seconds, so noise amortizes within the
   leg; min-of-reps would triple an already long bench). All v6 keys
   are preserved. *)
let time_explore ?dedup ?jobs ~reps () =
  (* same-warmth discipline: one untimed warmup in this exact
     configuration, then min-of-reps *)
  ignore (explore_rep5 ?dedup ?jobs ~max_paths:1_000_000 () : _ Uldma_verify.Explorer.result);
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = explore_rep5 ?dedup ?jobs ~max_paths:1_000_000 () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some r
  done;
  (Option.get !last, !best)

let dedup_ratio (r : _ Uldma_verify.Explorer.result) =
  let h = r.Uldma_verify.Explorer.dedup_hits and v = r.Uldma_verify.Explorer.states_visited in
  float_of_int h /. float_of_int (max 1 (h + v))

(* a "node" is one arrival at a dedup decision point: memo miss
   (expanded) or memo hit *)
let nodes (r : _ Uldma_verify.Explorer.result) =
  max 1 (r.Uldma_verify.Explorer.states_visited + r.Uldma_verify.Explorer.dedup_hits)

let per_node (r : _ Uldma_verify.Explorer.result) total =
  float_of_int total /. float_of_int (nodes r)

(* Microbench: nanoseconds to compute one memo key on a fixed
   mid-exploration state (rep5, every pid advanced one leg past the
   root, so the state has live processes and diverged pages). The
   explorer's per-node encoding cost is too small for per-call
   gettimeofday, so it is timed here over a tight loop instead — and
   CI gates this number against the committed BENCH_explorer.json. *)
let encode_ns_per_node ~paranoid =
  let module Scenario = Uldma_workload.Scenario in
  let s = Scenario.rep5 () in
  let root = s.Scenario.kernel in
  let k = Uldma_os.Kernel.snapshot root in
  List.iter
    (fun pid -> ignore (Uldma_verify.Explorer.advance_one_leg k pid ~max_instructions:2000))
    (Scenario.explore_pids s);
  let iters = 20_000 in
  let run () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Uldma_os.Kernel.state_key ~relative_to:root ~paranoid k : string * int)
    done;
    Unix.gettimeofday () -. t0
  in
  ignore (run () : float);
  let dt = Float.min (run ()) (run ()) in
  dt *. 1e9 /. float_of_int iters

(* The schema-v7 campaign experiment (see the schema comment above):
   cold-and-sequential per-candidate exploration vs the campaign
   engine's shared memo at jobs 1/2/4, on the exact-length-5 rep5
   accomplice family. Appends the "campaign" object to [buf]. *)
let bench_campaign buf =
  let module Scenario = Uldma_workload.Scenario in
  let module Synth = Uldma_workload.Synth in
  let module Campaign = Uldma_verify.Campaign in
  let module Explorer = Uldma_verify.Explorer in
  let slots = 5 and max_paths = 1_000_000 in
  let base = Synth.make_base (Synth.Rep Uldma_dma.Seq_matcher.Five) in
  let ops = Synth.enumerate ~exact:true ~slots () in
  (* sequential on purpose; see Synth.candidate *)
  let candidates = Array.map (Synth.candidate base) ops in
  let scenario = Synth.base_scenario base in
  let pids = Scenario.explore_pids scenario in
  let check = Scenario.oracle_check scenario in
  (* the warmth- and jobs-independent projection of a result: the facts
     every leg must agree on byte for byte *)
  let canon (r : _ Explorer.result) =
    ( r.Explorer.paths,
      r.Explorer.truncated,
      List.map (fun (v, sched) -> (Synth.kind_name v, sched)) r.Explorer.violations )
  in
  let n = Array.length candidates in
  Printf.printf "campaign: cold baseline over %d candidates...\n%!" n;
  let t0 = Unix.gettimeofday () in
  let cold_states = ref 0 in
  let cold =
    Array.map
      (fun (c : _ Campaign.candidate) ->
        let r = Explorer.explore ~root:c.Campaign.c_root ~pids ~max_paths ~check () in
        cold_states := !cold_states + r.Explorer.states_visited;
        canon r)
      candidates
  in
  let cold_secs = Unix.gettimeofday () -. t0 in
  let shared jobs =
    Printf.printf "campaign: shared memo, jobs=%d...\n%!" jobs;
    let t0 = Unix.gettimeofday () in
    let results, stats =
      Campaign.run ~candidates ~pids ~baseline:scenario.Scenario.kernel ~jobs ~max_paths
        ~check ()
    in
    (results, stats, Unix.gettimeofday () -. t0)
  in
  let legs = List.map (fun jobs -> (jobs, shared jobs)) [ 1; 2; 4 ] in
  let _, stats1, _ = List.assoc 1 legs in
  let shared1_states = stats1.Campaign.g_states in
  let best = List.fold_left (fun b (_, (_, _, s)) -> Float.min b s) infinity legs in
  Printf.bprintf buf "  \"campaign\": {\n";
  Printf.bprintf buf "    \"family\": \"rep5 exact-length-%d accomplice programs\",\n" slots;
  Printf.bprintf buf "    \"candidates\": %d,\n" n;
  Printf.bprintf buf "    \"max_paths\": %d,\n" max_paths;
  Printf.bprintf buf "    \"cold\": {\n";
  Printf.bprintf buf "      \"seconds\": %.6f,\n" cold_secs;
  Printf.bprintf buf "      \"candidates_per_sec\": %.2f,\n" (float_of_int n /. cold_secs);
  Printf.bprintf buf "      \"states_visited\": %d\n" !cold_states;
  Printf.bprintf buf "    },\n";
  List.iter
    (fun (jobs, (results, stats, secs)) ->
      let identical = ref true in
      Array.iteri (fun i r -> if canon r <> cold.(i) then identical := false) results;
      Printf.bprintf buf "    \"jobs%d\": {\n" jobs;
      Printf.bprintf buf "      \"seconds\": %.6f,\n" secs;
      Printf.bprintf buf "      \"candidates_per_sec\": %.2f,\n" (float_of_int n /. secs);
      Printf.bprintf buf "      \"states_visited\": %d,\n" stats.Campaign.g_states;
      Printf.bprintf buf "      \"memo_hits\": %d,\n" stats.Campaign.g_hits;
      Printf.bprintf buf "      \"outer_domains\": %d,\n" stats.Campaign.g_outer;
      Printf.bprintf buf "      \"inner_domains\": %d,\n" stats.Campaign.g_inner;
      Printf.bprintf buf "      \"results_identical_to_cold\": %b\n" !identical;
      Printf.bprintf buf "    },\n")
    legs;
  Printf.bprintf buf "    \"state_ratio\": %.3f,\n"
    (float_of_int !cold_states /. float_of_int (max 1 shared1_states));
  Printf.bprintf buf "    \"speedup_vs_cold\": %.3f\n" (cold_secs /. best);
  Printf.bprintf buf "  },\n";
  Printf.printf
    "campaign: %d candidates, cold %.1fs (%d states), best shared %.1fs (state ratio %.2fx, \
     speedup %.2fx)\n%!"
    n cold_secs !cold_states best
    (float_of_int !cold_states /. float_of_int (max 1 shared1_states))
    (cold_secs /. best)

let write_bench_explorer_json () =
  (try Unix.mkdir results_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* settle the heap after bechamel so its garbage doesn't tax this
     measurement, then warm up the exploration path *)
  Gc.compact ();
  ignore (explore_rep5 ~max_paths:50 ());
  let reps = 5 in
  let r, secs = time_explore ~reps () in
  let r_nd, secs_nd = time_explore ~dedup:false ~reps () in
  let par_jobs = 4 in
  let r_par, secs_par = time_explore ~jobs:par_jobs ~reps () in
  let initiation =
    List.map
      (fun name ->
        let m = Sim_measure.initiation ~iterations:300 (Api.find_exn name) in
        (name, m.Sim_measure.us_per_initiation))
      [ "kernel"; "ext-shadow"; "rep-args"; "key-based"; "pal" ]
  in
  let pps (res : 'a Uldma_verify.Explorer.result) s =
    float_of_int res.Uldma_verify.Explorer.paths /. s
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"schema_version\": 7,\n";
  Printf.bprintf buf "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  Buffer.add_string buf "  \"timing\": \"min of repetitions after one untimed same-config warmup; no persistent memo cache\",\n";
  Buffer.add_string buf "  \"explorer\": {\n";
  Buffer.add_string buf "    \"scenario\": \"rep5\",\n";
  Buffer.add_string buf "    \"max_paths\": 1000000,\n";
  Printf.bprintf buf "    \"paths\": %d,\n" r.Uldma_verify.Explorer.paths;
  Printf.bprintf buf "    \"truncated\": %b,\n" r.Uldma_verify.Explorer.truncated;
  Printf.bprintf buf "    \"repetitions\": %d,\n" reps;
  Printf.bprintf buf "    \"seconds_per_exploration\": %.6f,\n" secs;
  Printf.bprintf buf "    \"paths_per_sec\": %.1f,\n" (pps r secs);
  Printf.bprintf buf "    \"states_visited\": %d,\n" r.Uldma_verify.Explorer.states_visited;
  Printf.bprintf buf "    \"dedup_hits\": %d,\n" r.Uldma_verify.Explorer.dedup_hits;
  Printf.bprintf buf "    \"dedup_ratio\": %.4f,\n" (dedup_ratio r);
  Printf.bprintf buf "    \"stuck_legs\": %d,\n" r.Uldma_verify.Explorer.stuck_legs;
  Printf.bprintf buf "    \"snapshots\": %d,\n" r.Uldma_verify.Explorer.snapshots;
  Printf.bprintf buf "    \"snapshots_per_node\": %.3f,\n"
    (per_node r r.Uldma_verify.Explorer.snapshots);
  Printf.bprintf buf "    \"bytes_hashed\": %d,\n" r.Uldma_verify.Explorer.bytes_hashed;
  Printf.bprintf buf "    \"bytes_hashed_per_node\": %.1f,\n"
    (per_node r r.Uldma_verify.Explorer.bytes_hashed);
  Printf.bprintf buf "    \"encode_ns_per_node\": %.1f,\n" (encode_ns_per_node ~paranoid:false);
  Printf.bprintf buf "    \"encode_ns_per_node_paranoid\": %.1f,\n"
    (encode_ns_per_node ~paranoid:true);
  Buffer.add_string buf "    \"no_dedup\": {\n";
  Printf.bprintf buf "      \"paths\": %d,\n" r_nd.Uldma_verify.Explorer.paths;
  Printf.bprintf buf "      \"states_visited\": %d,\n" r_nd.Uldma_verify.Explorer.states_visited;
  Printf.bprintf buf "      \"seconds_per_exploration\": %.6f,\n" secs_nd;
  Printf.bprintf buf "      \"paths_per_sec\": %.1f\n" (pps r_nd secs_nd);
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf "    \"parallel\": {\n";
  Printf.bprintf buf "      \"jobs\": %d,\n" par_jobs;
  Printf.bprintf buf "      \"paths\": %d,\n" r_par.Uldma_verify.Explorer.paths;
  Printf.bprintf buf "      \"seconds_per_exploration\": %.6f,\n" secs_par;
  Printf.bprintf buf "      \"paths_per_sec\": %.1f,\n" (pps r_par secs_par);
  Printf.bprintf buf "      \"speedup_vs_sequential\": %.3f,\n" (secs /. secs_par);
  Printf.bprintf buf "      \"recommended_domains\": %d\n"
    (Domain.recommended_domain_count ());
  Buffer.add_string buf "    }\n";
  Buffer.add_string buf "  },\n  \"scenarios3\": {\n";
  let module Scenario = Uldma_workload.Scenario in
  let scenarios3 =
    [
      ("key-3", fun () -> Scenario.key_contested3 ());
      ("ext-shadow-3", fun () -> Scenario.ext_shadow_contested3 ());
      ("rep5-3", Scenario.rep5_contested3);
    ]
  in
  List.iteri
    (fun i (name, build) ->
      let explore_once ?paranoid_memo ?jobs ?memo_cap ?(max_paths = 1_000_000) () =
        let s = build () in
        let t0 = Unix.gettimeofday () in
        let r =
          Uldma_verify.Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
            ~max_paths ?paranoid_memo ?jobs ?memo_cap ~check:(Scenario.oracle_check s) ()
        in
        (r, Unix.gettimeofday () -. t0)
      in
      (* one untimed warmup + min-of-2 per leg: every leg (sequential
         and parallel) gets identical warmth and no persistent cache *)
      let explore ?paranoid_memo ?jobs ?memo_cap () =
        ignore (explore_once ?paranoid_memo ?jobs ?memo_cap () : _ * float);
        let ra, ta = explore_once ?paranoid_memo ?jobs ?memo_cap () in
        let _, tb = explore_once ?paranoid_memo ?jobs ?memo_cap () in
        (ra, Float.min ta tb)
      in
      let r1, s1 = explore () in
      let r2, s2 = explore ~jobs:2 () in
      let r4, s4 = explore ~jobs:4 () in
      let rb, sb = explore ~memo_cap:512 () in
      let rp, sp = explore ~paranoid_memo:true () in
      (* the lease check needs no timing: single clipped runs *)
      let trunc_paths = 50_000 in
      let t1, _ = explore_once ~max_paths:trunc_paths () in
      let t2, _ = explore_once ~jobs:2 ~max_paths:trunc_paths () in
      let t4, _ = explore_once ~jobs:4 ~max_paths:trunc_paths () in
      Printf.bprintf buf "    \"%s\": {\n" name;
      Printf.bprintf buf "      \"paths\": %d,\n" r1.Uldma_verify.Explorer.paths;
      Printf.bprintf buf "      \"violating_schedules\": %d,\n"
        (List.length r1.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      \"truncated\": %b,\n" r1.Uldma_verify.Explorer.truncated;
      Printf.bprintf buf "      \"states_visited\": %d,\n" r1.Uldma_verify.Explorer.states_visited;
      Printf.bprintf buf "      \"dedup_hits\": %d,\n" r1.Uldma_verify.Explorer.dedup_hits;
      Printf.bprintf buf "      \"dedup_ratio\": %.4f,\n" (dedup_ratio r1);
      Printf.bprintf buf "      \"stuck_legs\": %d,\n" r1.Uldma_verify.Explorer.stuck_legs;
      Printf.bprintf buf "      \"cutoff\": %d,\n" r4.Uldma_verify.Explorer.cutoff;
      Printf.bprintf buf "      \"memo_merges\": %d,\n" r4.Uldma_verify.Explorer.memo_merges;
      Printf.bprintf buf "      \"lease_splits\": %d,\n" r4.Uldma_verify.Explorer.lease_splits;
      Printf.bprintf buf "      \"snapshots_per_node\": %.3f,\n"
        (per_node r1 r1.Uldma_verify.Explorer.snapshots);
      Printf.bprintf buf "      \"bytes_hashed_per_node\": %.1f,\n"
        (per_node r1 r1.Uldma_verify.Explorer.bytes_hashed);
      let jobs_obj key (r : _ Uldma_verify.Explorer.result) secs =
        Printf.bprintf buf "      \"%s\": {\n" key;
        Printf.bprintf buf "        \"seconds\": %.6f,\n" secs;
        Printf.bprintf buf "        \"paths_per_sec\": %.1f,\n" (pps r secs);
        Printf.bprintf buf "        \"steals\": %d,\n" r.Uldma_verify.Explorer.steals;
        Printf.bprintf buf "        \"publications\": %d\n" r.Uldma_verify.Explorer.publications;
        Printf.bprintf buf "      },\n"
      in
      jobs_obj "jobs1" r1 s1;
      jobs_obj "jobs2" r2 s2;
      jobs_obj "jobs4" r4 s4;
      Printf.bprintf buf "      \"speedup_jobs2\": %.3f,\n" (s1 /. s2);
      Printf.bprintf buf "      \"speedup_jobs4\": %.3f,\n" (s1 /. s4);
      Printf.bprintf buf "      \"parallel_results_identical\": %b,\n"
        (r1.Uldma_verify.Explorer.paths = r2.Uldma_verify.Explorer.paths
        && r2.Uldma_verify.Explorer.paths = r4.Uldma_verify.Explorer.paths
        && List.map snd r1.Uldma_verify.Explorer.violations
           = List.map snd r2.Uldma_verify.Explorer.violations
        && List.map snd r2.Uldma_verify.Explorer.violations
           = List.map snd r4.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      \"truncated_parallel\": {\n";
      Printf.bprintf buf "        \"max_paths\": %d,\n" trunc_paths;
      Printf.bprintf buf "        \"truncated\": %b,\n" t1.Uldma_verify.Explorer.truncated;
      Printf.bprintf buf "        \"results_identical\": %b\n"
        (t1.Uldma_verify.Explorer.truncated && t2.Uldma_verify.Explorer.truncated
        && t4.Uldma_verify.Explorer.truncated
        && t1.Uldma_verify.Explorer.paths = t2.Uldma_verify.Explorer.paths
        && t2.Uldma_verify.Explorer.paths = t4.Uldma_verify.Explorer.paths
        && List.map snd t1.Uldma_verify.Explorer.violations
           = List.map snd t2.Uldma_verify.Explorer.violations
        && List.map snd t2.Uldma_verify.Explorer.violations
           = List.map snd t4.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      },\n";
      Printf.bprintf buf "      \"domains\": {\n";
      let dnames =
        List.filter
          (fun n -> String.length n > 9 && String.sub n 0 9 = "explorer.")
          (Uldma_obs.Counters.counter_names r4.Uldma_verify.Explorer.counters)
      in
      List.iteri
        (fun j n ->
          Printf.bprintf buf "        \"%s\": %d%s\n" n
            (Uldma_obs.Counters.value r4.Uldma_verify.Explorer.counters n)
            (if j = List.length dnames - 1 then "" else ","))
        dnames;
      Printf.bprintf buf "      },\n";
      Printf.bprintf buf "      \"paranoid\": {\n";
      Printf.bprintf buf "        \"seconds\": %.6f,\n" sp;
      Printf.bprintf buf "        \"bytes_hashed_per_node\": %.1f,\n"
        (per_node rp rp.Uldma_verify.Explorer.bytes_hashed);
      Printf.bprintf buf "        \"speedup_fingerprint_vs_paranoid\": %.3f,\n" (sp /. s1);
      Printf.bprintf buf "        \"results_identical\": %b\n"
        (rp.Uldma_verify.Explorer.paths = r1.Uldma_verify.Explorer.paths
        && rp.Uldma_verify.Explorer.states_visited = r1.Uldma_verify.Explorer.states_visited
        && List.map snd rp.Uldma_verify.Explorer.violations
           = List.map snd r1.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      },\n";
      Printf.bprintf buf "      \"bounded_memo\": {\n";
      Printf.bprintf buf "        \"memo_cap\": 512,\n";
      Printf.bprintf buf "        \"evictions\": %d,\n" rb.Uldma_verify.Explorer.evictions;
      Printf.bprintf buf "        \"seconds\": %.6f,\n" sb;
      Printf.bprintf buf "        \"results_identical\": %b\n"
        (rb.Uldma_verify.Explorer.paths = r1.Uldma_verify.Explorer.paths
        && List.map snd rb.Uldma_verify.Explorer.violations
           = List.map snd r1.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      }\n";
      Printf.bprintf buf "    }%s\n" (if i = List.length scenarios3 - 1 then "" else ",")
    )
    scenarios3;
  Buffer.add_string buf "  },\n  \"timed\": {\n";
  (* rep5 under each timed net backend: the wait leg grows the tree,
     the relative-deadline encoding must still collapse it (dedup
     ratio > 1) and brute-force / parallel runs must agree exactly *)
  Printf.bprintf buf "    \"scenario\": \"rep5\",\n";
  Printf.bprintf buf "    \"tick_ps\": %d,\n" Uldma_net.Backend.default_tick_ps;
  let timed_backends =
    [
      ("atm155", Uldma_net.Link.atm155);
      ("atm622", Uldma_net.Link.atm622);
      ("hic", Uldma_net.Link.hic1355);
    ]
  in
  List.iteri
    (fun i (name, link) ->
      let net = Uldma_net.Backend.linked link in
      let explore ?dedup ?jobs () =
        let s = Scenario.rep5 ~net () in
        let t0 = Unix.gettimeofday () in
        let r =
          Uldma_verify.Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
            ~max_paths:1_000_000 ?dedup ?jobs ~check:(Scenario.oracle_check s) ()
        in
        (r, Unix.gettimeofday () -. t0)
      in
      (* only the sequential leg is reported timed; give it the same
         warmup + min-of-2 discipline as every other timed leg *)
      let r, s =
        ignore (explore () : _ * float);
        let ra, ta = explore () in
        let _, tb = explore () in
        (ra, Float.min ta tb)
      in
      let rb, _ = explore ~dedup:false () in
      let r4, _ = explore ~jobs:4 () in
      let viols (x : _ Uldma_verify.Explorer.result) =
        List.map snd x.Uldma_verify.Explorer.violations
      in
      Printf.bprintf buf "    \"%s\": {\n" name;
      Printf.bprintf buf "      \"paths\": %d,\n" r.Uldma_verify.Explorer.paths;
      Printf.bprintf buf "      \"violating_schedules\": %d,\n"
        (List.length r.Uldma_verify.Explorer.violations);
      Printf.bprintf buf "      \"truncated\": %b,\n" r.Uldma_verify.Explorer.truncated;
      Printf.bprintf buf "      \"states_visited\": %d,\n" r.Uldma_verify.Explorer.states_visited;
      Printf.bprintf buf "      \"dedup_hits\": %d,\n" r.Uldma_verify.Explorer.dedup_hits;
      Printf.bprintf buf "      \"dedup_ratio\": %.4f,\n" (dedup_ratio r);
      Printf.bprintf buf "      \"seconds\": %.6f,\n" s;
      Printf.bprintf buf "      \"paths_per_sec\": %.1f,\n" (pps r s);
      Printf.bprintf buf "      \"differential_identical\": %b\n"
        (r.Uldma_verify.Explorer.paths = rb.Uldma_verify.Explorer.paths
        && r.Uldma_verify.Explorer.paths = r4.Uldma_verify.Explorer.paths
        && viols r = viols rb && viols r = viols r4);
      Printf.bprintf buf "    }%s\n" (if i = List.length timed_backends - 1 then "" else ",")
    )
    timed_backends;
  Buffer.add_string buf "  },\n";
  bench_campaign buf;
  Buffer.add_string buf "  \"initiation_us\": {\n";
  List.iteri
    (fun i (name, us) ->
      Printf.bprintf buf "    \"%s\": %.3f%s\n" name us
        (if i = List.length initiation - 1 then "" else ","))
    initiation;
  Buffer.add_string buf "  },\n  \"counters\": {\n";
  (* per-layer named counters (os, bus and dma sections) of a standard
     100-initiation session per mechanism: machine-readable per-PR
     visibility into *what* each mechanism did, not just how fast *)
  let mechs = [ "kernel"; "ext-shadow"; "rep-args"; "key-based"; "pal" ] in
  List.iteri
    (fun i name ->
      let s = Uldma.Session.create ~mech:name () in
      let p = Uldma.Session.process s ~name:"bench" () in
      Uldma.Session.dma_stub ~iterations:100 s p;
      Uldma.Session.run_exn s ~max_steps:2_000_000;
      let c = Uldma.Session.metrics s in
      let names = Uldma_obs.Counters.counter_names c in
      Printf.bprintf buf "    \"%s\": {\n" name;
      List.iteri
        (fun j n ->
          Printf.bprintf buf "      \"%s\": %d%s\n" n (Uldma_obs.Counters.value c n)
            (if j = List.length names - 1 then "" else ","))
        names;
      Printf.bprintf buf "    }%s\n" (if i = List.length mechs - 1 then "" else ",")
    )
    mechs;
  Buffer.add_string buf "  }\n}\n";
  let path = Filename.concat results_dir "BENCH_explorer.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "\nexplorer: %d rep5 paths in %.4fs (%.0f paths/s); wrote %s\n" r.Uldma_verify.Explorer.paths
    secs
    (float_of_int r.Uldma_verify.Explorer.paths /. secs)
    path

(* ------------------------------------------------------------------ *)
(* Cutoff / merge-batch ablation *)

(* The two work-stealing knobs `uldma_cli explore/campaign` expose
   (--cutoff: the initial adaptive publication depth, --merge-batch:
   how many private memo entries buffer before a locked-table merge),
   swept over the ext-shadow-3 contested tree at jobs=2 — the same
   scenario and core count the CI speedup gate watches. One row per
   (cutoff, merge_batch) cell: warmup + min-of-2 seconds, throughput,
   and the steal/publication/merge counts that explain it. On a
   single-core box the wall-clock column is flat and only the counter
   columns are informative; the CSV still records both. *)
let write_ablate_cutoff_csv () =
  let module Scenario = Uldma_workload.Scenario in
  let explore ~cutoff ~merge_batch =
    let s = Scenario.ext_shadow_contested3 () in
    let t0 = Unix.gettimeofday () in
    let r =
      Uldma_verify.Explorer.explore ~root:s.Scenario.kernel ~pids:(Scenario.explore_pids s)
        ~max_paths:1_000_000 ~jobs:2 ~cutoff ~merge_batch ~check:(Scenario.oracle_check s) ()
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "cutoff,merge_batch,seconds,paths_per_sec,steals,publications,memo_merges\n";
  List.iter
    (fun cutoff ->
      List.iter
        (fun merge_batch ->
          ignore (explore ~cutoff ~merge_batch : _ * float);
          let ra, ta = explore ~cutoff ~merge_batch in
          let _, tb = explore ~cutoff ~merge_batch in
          let secs = Float.min ta tb in
          Printf.bprintf buf "%d,%d,%.6f,%.1f,%d,%d,%d\n" cutoff merge_batch secs
            (float_of_int ra.Uldma_verify.Explorer.paths /. secs)
            ra.Uldma_verify.Explorer.steals ra.Uldma_verify.Explorer.publications
            ra.Uldma_verify.Explorer.memo_merges)
        [ 32; 256 ])
    [ 1; 4; 8; 32; 128 ];
  let path = Filename.concat results_dir "ablate_cutoff.csv" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "cutoff ablation (ext-shadow-3, jobs=2) -> %s\n" path

(* ------------------------------------------------------------------ *)
(* Cluster-service trajectory *)

(* BENCH_cluster.json (schema v1, written through Kv_load.Report — the
   same code path as `uldma_cli cluster`) records the KV-service tail
   latency per wire plus the doorbell-batching speedup at a reduced but
   statistically meaningful scale (10^5 transfers; the CLI default is
   10^6), so the cluster numbers travel with every PR next to
   BENCH_explorer.json. *)
let write_bench_cluster_json () =
  let module Kv = Uldma_workload.Kv_load in
  let params = { Kv.default_params with Kv.clients = 200; transfers = 100_000 } in
  let cal =
    match Kv.calibrate params.Kv.mech with Ok c -> c | Error e -> failwith e
  in
  let backends =
    List.map
      (fun name ->
        match Uldma_net.Backend.of_string name with
        | Ok b -> (name, b)
        | Error e -> failwith e)
      [ "atm155"; "atm622"; "gigabit"; "hic" ]
  in
  let cluster =
    Uldma.Session.cluster_exn ~net:"atm155" ~mech:params.Kv.mech ~nodes:params.Kv.nodes ()
  in
  let t0 = Unix.gettimeofday () in
  let cosim_bytes, cosim_packets = Kv.cosim_burst cluster ~words:64 in
  let sweep = Kv.sweep params ~cal backends in
  let gigabit = List.assoc "gigabit" backends in
  let batch1 = Kv.run { params with Kv.batch = 1 } ~cal ~net:gigabit in
  let batched = Kv.run params ~cal ~net:gigabit in
  let wall = Unix.gettimeofday () -. t0 in
  let report =
    {
      Kv.Report.params;
      cal;
      headline_net = "atm155";
      sweep;
      batching = { Kv.Report.bat_net = "gigabit"; batch1; batched };
      cosim_nodes = params.Kv.nodes;
      cosim_bytes;
      cosim_packets;
    }
  in
  let path = Filename.concat results_dir "BENCH_cluster.json" in
  Kv.Report.write ~path ~wall_seconds:wall report;
  let p99 name =
    float_of_int (Uldma_obs.Percentile.percentile (List.assoc name sweep).Kv.latency 0.99) /. 1e6
  in
  Printf.printf
    "cluster: %d nodes, %d clients, %d transfers; p99 atm155 %.1f us / gigabit %.1f us; batching \
     %.2fx; wrote %s\n"
    params.Kv.nodes params.Kv.clients params.Kv.transfers (p99 "atm155") (p99 "gigabit")
    (Kv.Report.speedup report.Kv.Report.batching)
    path

let () =
  run_experiments ();
  let results = benchmark () in
  print_bench_results results;
  write_bench_explorer_json ();
  write_ablate_cutoff_csv ();
  write_bench_cluster_json ();
  print_endline "done."
